#include "planner/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

namespace lc::planner {

namespace {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  if (v.size() % 2 == 1) return v[mid];
  return 0.5 * (v[mid - 1] + v[mid]);
}

/// Per-level α-β least squares over (messages, bytes) → seconds triples.
/// Falls back to a pure-bandwidth fit (α = 0, β = median s/b) when the
/// normal matrix is singular — all samples sharing one message/byte shape
/// cannot separate latency from bandwidth.
void fit_level(const std::vector<double>& msgs, const std::vector<double>& bytes,
               const std::vector<double>& secs, double& alpha, double& beta) {
  alpha = 0.0;
  beta = 0.0;
  if (msgs.size() < 2) {
    std::vector<double> ratios;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      if (bytes[i] > 0.0) ratios.push_back(secs[i] / bytes[i]);
    }
    beta = median(std::move(ratios));
    return;
  }
  double smm = 0.0, sbb = 0.0, smb = 0.0, sms = 0.0, sbs = 0.0;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    smm += msgs[i] * msgs[i];
    sbb += bytes[i] * bytes[i];
    smb += msgs[i] * bytes[i];
    sms += msgs[i] * secs[i];
    sbs += bytes[i] * secs[i];
  }
  const double det = smm * sbb - smb * smb;
  if (!(std::abs(det) > 1e-12 * smm * sbb) || smm == 0.0 || sbb == 0.0) {
    std::vector<double> ratios;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      if (bytes[i] > 0.0) ratios.push_back(secs[i] / bytes[i]);
    }
    beta = median(std::move(ratios));
    return;
  }
  alpha = (sms * sbb - sbs * smb) / det;
  beta = (sbs * smm - sms * smb) / det;
  // Negative coefficients are a sign of collinearity, not physics; clamp
  // and refit the surviving term so predictions stay monotone in traffic.
  if (alpha < 0.0 || beta < 0.0) {
    alpha = 0.0;
    std::vector<double> ratios;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      if (bytes[i] > 0.0) ratios.push_back(secs[i] / bytes[i]);
    }
    beta = median(std::move(ratios));
  }
}

bool scan_number(const std::string& text, const char* key, double& out) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const char* start = text.c_str() + at + needle.size();
  char* end = nullptr;
  out = std::strtod(start, &end);
  return end != start;
}

}  // namespace

std::string Calibration::cache_salt() const {
  if (!valid) return "-";
  char buf[160];
  std::snprintf(buf, sizeof buf, "s%d:r%.6g:ia%.4g:ib%.4g:oa%.4g:ob%.4g",
                samples, rate_pps, intra_alpha, intra_beta, inter_alpha,
                inter_beta);
  return buf;
}

Calibration fit_calibration(const std::vector<obs::PlanOutcome>& records,
                            int min_samples) {
  Calibration cal;
  std::vector<double> rates;
  std::vector<double> im, ib, is, om, ob, os;
  for (const obs::PlanOutcome& r : records) {
    // Aborted runs have partial measurements; single-rank (service-local)
    // records have no exchange and their compute includes assembly noise —
    // the distributed records are the planner-shaped samples.
    if (r.aborted || r.ranks <= 1) continue;
    if (r.meas_compute_s <= 0.0 || r.pred_point_passes <= 0.0) continue;
    rates.push_back(r.pred_point_passes / r.meas_compute_s);
    if (r.meas_intra_bytes > 0 && r.meas_intra_wire_s > 0.0) {
      im.push_back(static_cast<double>(r.meas_intra_msgs));
      ib.push_back(static_cast<double>(r.meas_intra_bytes));
      is.push_back(r.meas_intra_wire_s);
    }
    if (r.meas_inter_bytes > 0 && r.meas_inter_wire_s > 0.0) {
      om.push_back(static_cast<double>(r.meas_inter_msgs));
      ob.push_back(static_cast<double>(r.meas_inter_bytes));
      os.push_back(r.meas_inter_wire_s);
    }
  }
  cal.samples = static_cast<int>(rates.size());
  if (cal.samples < min_samples) return cal;  // invalid: defaults stand
  cal.rate_pps = median(rates);
  fit_level(im, ib, is, cal.intra_alpha, cal.intra_beta);
  fit_level(om, ob, os, cal.inter_alpha, cal.inter_beta);
  cal.valid = cal.rate_pps > 0.0;
  return cal;
}

Calibration fit_calibration_file(const std::string& history_path,
                                 int min_samples) {
  return fit_calibration(obs::read_plan_outcomes(history_path), min_samples);
}

bool save_calibration(const Calibration& cal, const std::string& path) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"v\":1,\"samples\":%d,\"rate_pps\":%.9g,"
                "\"intra_alpha\":%.9g,\"intra_beta\":%.9g,"
                "\"inter_alpha\":%.9g,\"inter_beta\":%.9g}\n",
                cal.samples, cal.rate_pps, cal.intra_alpha, cal.intra_beta,
                cal.inter_alpha, cal.inter_beta);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t len = std::strlen(buf);
  const bool ok = std::fwrite(buf, 1, len, f) == len;
  return (std::fclose(f) == 0) && ok;
}

Calibration load_calibration(const std::string& path) {
  Calibration cal;
  std::ifstream in(path);
  if (!in) return cal;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  double samples = 0.0;
  if (!scan_number(text, "samples", samples)) return cal;
  cal.samples = static_cast<int>(samples);
  (void)scan_number(text, "rate_pps", cal.rate_pps);
  (void)scan_number(text, "intra_alpha", cal.intra_alpha);
  (void)scan_number(text, "intra_beta", cal.intra_beta);
  (void)scan_number(text, "inter_alpha", cal.inter_alpha);
  (void)scan_number(text, "inter_beta", cal.inter_beta);
  cal.valid = cal.samples >= kMinCalibrationSamples && cal.rate_pps > 0.0;
  return cal;
}

namespace {

std::mutex g_cal_mutex;
Calibration g_cal;
bool g_cal_loaded = false;

}  // namespace

const Calibration& calibration_from_env() {
  std::lock_guard<std::mutex> lock(g_cal_mutex);
  if (!g_cal_loaded) {
    g_cal_loaded = true;
    const char* env = std::getenv("LC_CALIBRATION");
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "off") != 0) {
      g_cal = load_calibration(env);
    }
  }
  return g_cal;
}

void reload_calibration() {
  std::lock_guard<std::mutex> lock(g_cal_mutex);
  g_cal_loaded = false;
  g_cal = Calibration{};
}

PlanRequest apply_calibration(PlanRequest req, const Calibration& cal) {
  if (!cal.valid) return req;
  if (cal.rate_pps > 0.0) req.compute_rate_pps = cal.rate_pps;
  if (cal.intra_alpha > 0.0 || cal.intra_beta > 0.0) {
    req.links.intra = comm::AlphaBetaModel{cal.intra_alpha, cal.intra_beta};
  }
  if (cal.inter_alpha > 0.0 || cal.inter_beta > 0.0) {
    req.links.inter = comm::AlphaBetaModel{cal.inter_alpha, cal.inter_beta};
  }
  return req;
}

}  // namespace lc::planner
