// Micro-probe for kProbe mode: a short REAL run of one sub-domain through
// the actual local pipeline (decompose → convolve_one → accumulate_region),
// scaled to the per-rank sub-domain count. This replaces the analytic
// compute model with a measurement while the wire time stays modeled (there
// is no cluster to execute against at planning time — and the static
// traffic mirror is already byte-exact).
#pragma once

#include "planner/planner.hpp"

namespace lc::planner {

/// Measured per-rank compute seconds for a kBlock candidate: time one
/// central sub-domain (warm once, best of two) and multiply by the number
/// of sub-domains a rank owns. Throws InvalidArgument for non-block
/// candidates.
[[nodiscard]] double probe_block_seconds(const PlanRequest& request,
                                         const Candidate& candidate);

}  // namespace lc::planner
