#include "planner/planner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "common/check.hpp"
#include "common/runtime_flags.hpp"
#include "core/hyperparams.hpp"
#include "device/memory_model.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "planner/calibration.hpp"
#include "planner/probe.hpp"
#include "sampling/octree.hpp"

namespace lc::planner {

namespace {

struct PlannerMetrics {
  obs::Counter& plans = obs::Registry::global().counter("planner.plans");
  obs::Counter& candidates =
      obs::Registry::global().counter("planner.candidates");
  obs::Counter& exact_priced =
      obs::Registry::global().counter("planner.exact_priced");
  obs::Counter& probes = obs::Registry::global().counter("planner.probes");

  static PlannerMetrics& get() {
    static PlannerMetrics m;
    return m;
  }
};

double cube(double v) { return v * v * v; }

/// Per-sub-domain octree shape at a representative (central) sub-domain.
/// Metadata-only build — cheap at every (n, k, policy).
struct BlockShape {
  std::size_t samples = 0;  ///< retained samples (the Eqn-6 payload, exact)
  std::size_t planes = 0;   ///< retained z-planes (drives the inverse stage)
  std::size_t cells = 0;    ///< octree cells (per-cell codec headers)
};

BlockShape block_shape(i64 n, const core::LowCommParams& params) {
  const Grid3 grid = Grid3::cube(n);
  const i64 blocks = n / params.subdomain;
  const i64 c = (blocks / 2) * params.subdomain;
  const sampling::Octree tree(grid, Box3::cube_at({c, c, c}, params.subdomain),
                              params.make_policy());
  return {tree.total_samples(), tree.retained_z_planes().size(),
          tree.cells().size()};
}

/// Uniform ranks-per-node of the topology, or 1 when nodes are uneven (the
/// closed-form models assume uniform nodes; the exact stage does not).
int uniform_ranks_per_node(const comm::Topology& topo) {
  if (topo.nodes() == 0 || topo.ranks() % topo.nodes() != 0) return 1;
  return topo.ranks() / topo.nodes();
}

bool routes_hierarchically(core::ExchangeRoute route,
                           const comm::Topology& topo) {
  if (route == core::ExchangeRoute::kFlat) return false;
  if (route == core::ExchangeRoute::kHierarchical) return true;
  return !topo.is_flat();
}

/// Largest batch (halving from the recommended size, floor 128) whose
/// pipeline fits the device. Batch only trades throughput for pencil-stage
/// bytes, so shrinking it never changes the numerics.
std::size_t fit_batch(i64 n, const core::LowCommParams& params,
                      std::size_t start, const device::DeviceSpec& device) {
  core::LowCommParams p = params;
  p.batch = start;
  while (p.batch > 128) {
    const auto plan =
        device::plan_local_pipeline(n, p.subdomain, p.make_policy(), p.batch);
    if (plan.actual_total() <= device.capacity_bytes) break;
    p.batch /= 2;
  }
  return p.batch;
}

comm::LevelTraffic add_traffic(comm::LevelTraffic a,
                               const comm::LevelTraffic& b) {
  a.intra_bytes += b.intra_bytes;
  a.inter_bytes += b.inter_bytes;
  a.intra_messages += b.intra_messages;
  a.inter_messages += b.inter_messages;
  return a;
}

/// Closed-form price of a block candidate (screening stage). `shape` is the
/// representative sub-domain octree, memoized by the caller per
/// (k, schedule, r) — codecs and routes reprice it without rebuilding.
CandidateCost price_block(const PlanRequest& req, const Candidate& c,
                          const BlockShape& shape) {
  CandidateCost cost;
  const core::LowCommParams& p = c.params;
  const i64 n = req.n;
  const i64 k = p.subdomain;

  // Accuracy screen: interpolation error of the rate schedule plus the
  // wire codec's quantization error (additive pessimism — the two error
  // sources are independent and small).
  const i64 r_ext = p.uniform_rate.value_or(p.far_rate);
  cost.predicted_rel_error = predicted_rel_error(n, k, r_ext, c.schedule) +
                             comm::codec_rel_error(p.wire);

  const auto plan = device::plan_local_pipeline(n, k, p.make_policy(), p.batch);
  cost.memory_bytes = plan.actual_total();

  const double subdomains = cube(static_cast<double>(n / k));
  const double owned =
      std::ceil(subdomains / static_cast<double>(std::max(req.ranks, 1)));

  // Compute model in transform point-passes — obs::modeled_point_passes is
  // the single source shared with the telemetry emitter, so a rate fitted
  // from plan-vs-actual history (planner/calibration.hpp) is directly
  // substitutable for req.compute_rate_pps.
  const double per_subdomain =
      obs::modeled_point_passes(n, k, shape.planes, real_path_enabled());
  cost.compute_seconds = owned * per_subdomain / req.compute_rate_pps;

  // Wire model: each rank ships its owned sub-domains' exact octree payload
  // (the executable Eqn-6 volume) as the codec encodes it — per-sample
  // width plus per-cell scale headers — spread by the closed-form schedule.
  const double bytes_per_rank =
      owned * (static_cast<double>(shape.samples) *
                   static_cast<double>(comm::codec_sample_bytes(p.wire)) +
               static_cast<double>(shape.cells) *
                   static_cast<double>(comm::codec_cell_header_bytes(p.wire)));
  const int g = uniform_ranks_per_node(req.topology);
  comm::LevelTraffic traffic;
  if (routes_hierarchically(c.route, req.topology) &&
      req.ranks % std::max(g, 1) == 0) {
    // Node-granularity packing dedups cells shared across a node's ranks.
    // Banded trees tile cells one-per-sub-domain (no sharing, PR-6
    // measurement); uniform-rate trees share 2–8×. The exact stage replaces
    // this estimate with the real octree walk for the shortlist.
    const double dedup =
        c.schedule == RateSchedule::kUniform
            ? std::clamp(static_cast<double>(g) / 2.0, 1.0, 8.0)
            : 1.0;
    traffic =
        comm::hierarchical_exchange_traffic(req.ranks, g, bytes_per_rank,
                                            dedup);
  } else {
    traffic = comm::flat_exchange_traffic(req.ranks, g, bytes_per_rank);
  }
  cost.exchange_bytes = static_cast<double>(traffic.total_bytes());
  cost.wire = comm::predict_exchange_times(traffic, req.links);

  if (cost.memory_bytes > req.device.capacity_bytes) {
    cost.infeasible_reason =
        "memory: needs " + std::to_string(cost.memory_bytes) +
        " bytes, device '" + req.device.name + "' has " +
        std::to_string(req.device.capacity_bytes);
  } else if (cost.predicted_rel_error > req.max_rel_error) {
    cost.infeasible_reason = "accuracy: predicted rel error exceeds target";
  } else if (subdomains < static_cast<double>(req.ranks)) {
    cost.infeasible_reason = "underfills cluster: fewer sub-domains than ranks";
  } else {
    cost.feasible = true;
  }
  return cost;
}

/// Price a slab/pencil baseline-FFT row (Eqn 1: all-to-all transpose stages
/// each moving ~N³/P points; slab partitions need one, pencils two).
CandidateCost price_baseline(const PlanRequest& req, DecompKind kind) {
  CandidateCost cost;
  const double n3 = cube(static_cast<double>(req.n));
  const double p = static_cast<double>(req.ranks);
  const int stages = kind == DecompKind::kSlab ? 1 : 2;

  // Per-rank working set: the real input slice plus two complex copies
  // (transform + transpose staging).
  cost.memory_bytes = static_cast<std::size_t>(
      n3 / p * (sizeof(double) + 2.0 * 2.0 * sizeof(double)));
  cost.predicted_rel_error = 0.0;  // exact method

  const double lg = std::log2(static_cast<double>(req.n));
  cost.compute_seconds = 3.0 * n3 * lg / p / req.compute_rate_pps;

  const int g = uniform_ranks_per_node(req.topology);
  const double stage_bytes_per_rank =
      n3 / p * 2.0 * sizeof(double);  // complex points
  comm::LevelTraffic traffic;
  for (int s = 0; s < stages; ++s) {
    traffic = add_traffic(
        traffic, comm::flat_exchange_traffic(req.ranks, g,
                                             stage_bytes_per_rank));
  }
  cost.exchange_bytes = static_cast<double>(traffic.total_bytes());
  cost.wire = comm::predict_exchange_times(traffic, req.links);

  const double max_parts =
      kind == DecompKind::kSlab
          ? static_cast<double>(req.n)
          : static_cast<double>(req.n) * static_cast<double>(req.n);
  if (cost.memory_bytes > req.device.capacity_bytes) {
    cost.infeasible_reason = "memory: baseline slice does not fit the device";
  } else if (p > max_parts) {
    cost.infeasible_reason = kind == DecompKind::kSlab
                                 ? "more ranks than slabs (P > N)"
                                 : "more ranks than pencils (P > N^2)";
  } else {
    cost.feasible = true;
  }
  return cost;
}

/// Repair a pinned k that DomainDecomposition would reject: the largest
/// divisor of n not exceeding it (or the smallest divisor when the pin is
/// below every divisor).
i64 repair_subdomain(i64 n, i64 pinned) {
  const auto divisors = core::subdomain_divisors(n);
  for (const i64 d : divisors) {
    if (d <= pinned) return d;
  }
  return divisors.back();
}

bool better(const RankedCandidate& a, const RankedCandidate& b) {
  if (a.cost.feasible != b.cost.feasible) return a.cost.feasible;
  return a.cost.total_seconds() < b.cost.total_seconds();
}

}  // namespace

Mode mode_from_env() {
  switch (env_choice("LC_PLANNER", 0, {"analytic", "off", "probe"})) {
    case 1:
      return Mode::kOff;
    case 2:
      return Mode::kProbe;
    default:
      return Mode::kAnalytic;
  }
}

std::vector<comm::WireCodec> default_codec_grid() {
  if (std::getenv("LC_WIRE") != nullptr) {
    // Explicitly pinned wire format: plan only under it (and let a bad
    // spelling throw the same error every other LC_WIRE reader raises).
    return {comm::wire_codec_from_env()};
  }
  return {comm::WireCodec::kOff, comm::WireCodec::kFp32,
          comm::WireCodec::kBf16, comm::WireCodec::kQ16};
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kProbe:
      return "probe";
    case Mode::kAnalytic:
      break;
  }
  return "analytic";
}

std::string Candidate::name() const {
  if (kind == DecompKind::kSlab) return "slab-fft";
  if (kind == DecompKind::kPencil) return "pencil-fft";
  std::string s = "block k=" + std::to_string(params.subdomain);
  s += schedule == RateSchedule::kUniform ? " uniform r=" : " banded r=";
  s += std::to_string(params.uniform_rate.value_or(params.far_rate));
  s += route == core::ExchangeRoute::kHierarchical ? " hier" : " flat";
  if (params.wire != comm::WireCodec::kOff) {
    s += std::string(" wire=") + comm::codec_name(params.wire);
  }
  return s;
}

double predicted_rel_error(i64 n, i64 k, i64 exterior_rate,
                           RateSchedule schedule) {
  LC_CHECK_ARG(n >= k && k >= 1 && exterior_rate >= 1, "bad (n, k, r)");
  if (exterior_rate <= 1) return 0.0;
  // Calibrated against the paper's regime: ~2% at (N=128, k=32, r=4) and
  // still under 3% at (N=1024, k=32, r=32) — interpolation error grows with
  // log r but the coarse region sits farther out (relative to N) on larger
  // grids where the field is smooth. Banded schedules keep the near field
  // denser than uniform ones at equal far rate.
  const double c = schedule == RateSchedule::kBanded ? 0.015 : 0.02;
  return c * std::log2(static_cast<double>(exterior_rate)) *
         std::sqrt(static_cast<double>(k) / static_cast<double>(n));
}

Planner::Planner(PlannerConfig config) : config_(std::move(config)) {
  LC_CHECK_ARG(!config_.rate_grid.empty(), "rate grid must not be empty");
}

std::vector<RankedCandidate> Planner::enumerate(
    const PlanRequest& request) const {
  LC_TRACE("planner.enumerate");
  // Closed loop: a fitted LC_CALIBRATION replaces the static device-peak
  // rate and default link params before any candidate is priced (no-op
  // when unset/invalid; idempotent when plan() already applied it).
  const PlanRequest req = apply_calibration(request, calibration_from_env());
  LC_CHECK_ARG(req.n >= 2, "grid side must be >= 2");
  LC_CHECK_ARG(req.ranks >= 1, "need at least one rank");
  LC_CHECK_ARG(req.topology.ranks() == req.ranks,
               "topology rank count must match the request");
  LC_CHECK_ARG(req.compute_rate_pps > 0.0, "compute rate must be positive");

  std::vector<core::ExchangeRoute> routes{core::ExchangeRoute::kFlat};
  if (!req.topology.is_flat()) {
    routes.push_back(core::ExchangeRoute::kHierarchical);
  }

  std::vector<RankedCandidate> out;
  // The representative octree shape depends only on (k, schedule, r) — one
  // build per rate point, shared across every route × codec variant.
  const auto push_block = [&](const core::LowCommParams& p,
                              RateSchedule sched, const BlockShape& shape) {
    for (const core::ExchangeRoute route : routes) {
      Candidate c;
      c.kind = DecompKind::kBlock;
      c.schedule = sched;
      c.route = route;
      c.params = p;
      out.push_back(RankedCandidate{c, price_block(req, c, shape), 0.0});
    }
  };

  if (req.pinned) {
    // Pinned mode: validate / repair, never re-tune. Only an illegal k
    // (does not divide N) or an over-budget batch is adjusted; the pinned
    // wire codec passes through unchanged — no codec search.
    core::LowCommParams p = *req.pinned;
    if (p.subdomain < 1 || req.n % p.subdomain != 0) {
      p.subdomain = repair_subdomain(req.n, std::max<i64>(p.subdomain, 1));
    }
    p.batch = fit_batch(req.n, p, p.batch, req.device);
    push_block(p, p.uniform_rate ? RateSchedule::kUniform
                                 : RateSchedule::kBanded,
               block_shape(req.n, p));
  } else {
    LC_CHECK_ARG(!config_.codec_grid.empty(), "codec grid must not be empty");
    const std::size_t batch0 = core::recommended_batch(req.n);
    for (const i64 k : core::subdomain_divisors(req.n)) {
      if (k < config_.min_subdomain) continue;
      for (const RateSchedule sched :
           {RateSchedule::kBanded, RateSchedule::kUniform}) {
        for (const i64 r : config_.rate_grid) {
          if (r > k) continue;
          core::LowCommParams p = req.base;
          p.subdomain = k;
          if (sched == RateSchedule::kUniform) {
            p.uniform_rate = r;
            p.far_rate = r;
          } else {
            p.uniform_rate.reset();
            p.far_rate = r;
          }
          p.batch = fit_batch(req.n, p, batch0, req.device);
          const BlockShape shape = block_shape(req.n, p);
          for (const comm::WireCodec codec : config_.codec_grid) {
            p.wire = codec;
            push_block(p, sched, shape);
          }
        }
      }
    }
    if (config_.include_baselines) {
      for (const DecompKind kind : {DecompKind::kSlab, DecompKind::kPencil}) {
        Candidate c;
        c.kind = kind;
        out.push_back(RankedCandidate{c, price_baseline(req, kind), 0.0});
      }
    }
  }
  std::stable_sort(out.begin(), out.end(), better);

  // Exact stage: re-price the closed-form shortlist with the real static
  // traffic mirror — the same per-level bytes/messages a SimCluster run
  // records for the exchange. Worth it only when something actually moves.
  if (req.ranks > 1) {
    const Grid3 grid = Grid3::cube(req.n);
    std::size_t repriced = 0;
    for (auto& rc : out) {
      if (repriced >= config_.exact_top) break;
      if (rc.candidate.kind != DecompKind::kBlock || !rc.cost.feasible) {
        continue;
      }
      const auto traffic = core::lowcomm_exchange_traffic(
          grid, rc.candidate.params, req.topology, rc.candidate.route);
      rc.cost.exchange_bytes = static_cast<double>(traffic.total_bytes());
      rc.cost.wire = comm::predict_exchange_times(traffic, req.links);
      rc.cost.exact_traffic = true;
      PlannerMetrics::get().exact_priced.add(1);
      ++repriced;
    }
    std::stable_sort(out.begin(), out.end(), better);
  }
  PlannerMetrics::get().candidates.add(out.size());
  return out;
}

ExecutionPlan Planner::plan(const PlanRequest& req) const {
  LC_TRACE("planner.plan");
  std::vector<RankedCandidate> ranked = enumerate(req);
  const auto executable = [](const RankedCandidate& rc) {
    return rc.candidate.kind == DecompKind::kBlock && rc.cost.feasible;
  };
  std::size_t best = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (executable(ranked[i])) {
      best = i;
      break;
    }
  }
  LC_CHECK_ARG(
      best < ranked.size(),
      "planner found no feasible block plan for N=" + std::to_string(req.n) +
          " on device '" + req.device.name + "' at rel-error target " +
          std::to_string(req.max_rel_error) +
          " — relax the accuracy target or use a larger device");

  if (config_.mode == Mode::kProbe) {
    // Short real micro-runs of the top candidates; the pick becomes
    // measured compute + modeled wire (wire cannot be executed without a
    // cluster, and the static mirror is already byte-exact).
    const ProbeFn probe =
        config_.probe ? config_.probe : ProbeFn(probe_block_seconds);
    double best_total = std::numeric_limits<double>::infinity();
    std::size_t probed = 0;
    for (std::size_t i = 0;
         i < ranked.size() && probed < config_.probe_top; ++i) {
      if (!executable(ranked[i])) continue;
      ranked[i].probed_seconds = probe(req, ranked[i].candidate);
      PlannerMetrics::get().probes.add(1);
      ++probed;
      const double total =
          ranked[i].probed_seconds + ranked[i].cost.wire.total_seconds();
      if (total < best_total) {
        best_total = total;
        best = i;
      }
    }
  }

  ExecutionPlan plan;
  plan.choice = ranked[best].candidate;
  plan.cost = ranked[best].cost;
  plan.probed_seconds = ranked[best].probed_seconds;
  plan.mode = config_.mode;
  plan.ranked = std::move(ranked);
  PlannerMetrics::get().plans.add(1);
  return plan;
}

std::string cache_key(const PlanRequest& req, Mode mode) {
  // "execplan/" keeps this namespace disjoint from the service's FFT-plan
  // entries ("plan/n=<n>") in the same ResourceCache.
  std::string key = "execplan/n=" + std::to_string(req.n);
  // Real-path dispatch changes both the compute and memory pricing, so
  // cached plans must not leak across LC_REAL toggles.
  key += real_path_enabled() ? "/real=on" : "/real=off";
  // Same for the wire codec: the request's base codec seeds the candidate
  // grid (LC_WIRE pins it), so plans must not leak across codec changes.
  key += std::string("/wire=") + comm::codec_name(req.base.wire);
  key += "/p=" + std::to_string(req.ranks);
  key += "/nodes=" + std::to_string(req.topology.nodes());
  key += "/dev=" + req.device.name + ":" +
         std::to_string(req.device.capacity_bytes);
  key += "/acc=" + std::to_string(req.max_rel_error);
  key += "/mode=" + std::string(mode_name(mode));
  // Salt with the active calibration: a new fit must invalidate cached
  // plans priced under the old rates.
  key += "/cal=" + calibration_from_env().cache_salt();
  if (req.pinned) {
    const core::LowCommParams& p = *req.pinned;
    key += "/pin=k" + std::to_string(p.subdomain) + "r" +
           std::to_string(p.far_rate) + "ur" +
           (p.uniform_rate ? std::to_string(*p.uniform_rate)
                           : std::string("-")) +
           "bb" + std::to_string(p.boundary_band) + "dh" +
           std::to_string(p.dense_halo) + "B" + std::to_string(p.batch) +
           "i" + std::to_string(static_cast<int>(p.interpolation)) + "w" +
           comm::codec_name(p.wire);
  } else {
    key += "/pin=-";
  }
  return key;
}

RealField execute_plan(comm::SimCluster& cluster, const RealField& input,
                       std::shared_ptr<const green::KernelSpectrum> kernel,
                       const ExecutionPlan& plan) {
  return core::distributed_lowcomm_convolve(cluster, input, input.grid(),
                                            std::move(kernel), plan.params(),
                                            plan.route());
}

}  // namespace lc::planner
