// Planner calibration: closing the loop from telemetry to pricing
// (DESIGN.md §18, ROADMAP item 2's "learned compute model").
//
// The planner prices compute with PlanRequest::compute_rate_pps (a static
// device-peak guess) and wire with the request's α-β link models. Both are
// exactly the quantities the plan-vs-actual history measures: every record
// pairs pred_point_passes with meas_compute_s (rate = passes / seconds) and
// per-level executed (messages, bytes) with the modeled per-level wire
// seconds. fit_calibration() regresses those:
//
//   rate_pps    — median over records of pred_point_passes / meas_compute_s.
//                 The median-of-ratios is robust to the occasional outlier
//                 (cold caches, CI noise) that would wreck a least-squares
//                 mean, and it needs no design matrix.
//   α, β per level — least squares of seconds ≈ α·messages + β·bytes over
//                 the per-level (msgs, bytes, seconds) triples. When the
//                 2×2 normal matrix is singular (all records share one
//                 message/byte shape, so α and β cannot be separated) the
//                 fit falls back to α = 0, β = median(seconds / bytes).
//
// A minimum-sample guard keeps a single noisy record from steering the
// planner; below it the fit reports invalid and the static defaults stand.
// LC_CALIBRATION=<path> feeds a saved fit back into every Planner::plan —
// plans are re-ranked under the fitted rates, and cache keys are salted
// with the calibration so stale cached plans cannot survive a new fit.
#pragma once

#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "planner/planner.hpp"

namespace lc::planner {

/// A fitted (or loaded) calibration. `valid` only when the fit had enough
/// usable records; invalid calibrations leave requests untouched.
struct Calibration {
  bool valid = false;
  int samples = 0;           ///< records the fit consumed
  double rate_pps = 0.0;     ///< measured compute rate (point-passes/s)
  double intra_alpha = 0.0;  ///< per-message latency, intra-node [s]
  double intra_beta = 0.0;   ///< per-byte cost, intra-node [s/B]
  double inter_alpha = 0.0;
  double inter_beta = 0.0;
  /// Distinct tag for plan cache keys ("-" when invalid).
  [[nodiscard]] std::string cache_salt() const;
};

/// Records below this count yield an invalid fit. Two is deliberate: one
/// observability-demo run emits two distributed records (flat +
/// hierarchical), so a single demo run is already fittable, while one lone
/// record never is.
inline constexpr int kMinCalibrationSamples = 2;

/// Fit a calibration from plan-vs-actual records. Only non-aborted records
/// of distributed runs (ranks > 1) with positive measured compute feed the
/// rate; the α-β fit additionally needs executed wire traffic.
[[nodiscard]] Calibration fit_calibration(
    const std::vector<obs::PlanOutcome>& records,
    int min_samples = kMinCalibrationSamples);

/// Convenience: read a JSONL history file and fit.
[[nodiscard]] Calibration fit_calibration_file(
    const std::string& history_path,
    int min_samples = kMinCalibrationSamples);

/// Save / load the flat single-object JSON calibration file format.
bool save_calibration(const Calibration& cal, const std::string& path);
[[nodiscard]] Calibration load_calibration(const std::string& path);

/// The process-wide calibration from LC_CALIBRATION=<path> (unset or "off"
/// → invalid). Loaded once and cached; reload_calibration() re-reads the
/// environment (tests and tools that flip the variable mid-process).
[[nodiscard]] const Calibration& calibration_from_env();
void reload_calibration();

/// Apply `cal` to a request: substitute the fitted compute rate and
/// per-level link parameters. No-op when the calibration is invalid.
[[nodiscard]] PlanRequest apply_calibration(PlanRequest req,
                                            const Calibration& cal);

}  // namespace lc::planner
