// Auto-tuning execution planner — a query optimizer for convolutions
// (ROADMAP item 2, DESIGN.md §15).
//
// The paper fixes one k³ sub-domain scheme and hand-tunes (k, r, B) per
// problem size (§5.4); the related work (Duy & Ozaki's minimum-communication
// decomposition, P3DFFT's slab-vs-pencil choice, OpenFFT's empirical
// auto-tuning) shows the win is in *choosing* the decomposition. Given a
// PlanRequest — problem size N, rank count P, comm::Topology, per-level
// α-β link model, device memory budget, accuracy target — the Planner:
//
//   1. enumerates candidates: k³ block decompositions over the divisors of
//      N × {banded, uniform} octree rate schedules × {flat, hierarchical}
//      exchange routes × wire codecs (LC_WIRE, DESIGN.md §17), plus
//      slab/pencil variants of the baseline distributed FFT for comparison;
//   2. prices each with the analytic models: Eqn 6 volume (per-sub-domain
//      retained samples from a real metadata-only octree), Eqn 2 per-level
//      α-β wire time via comm::predict_exchange_times, a transform-work
//      compute model, and device::plan_local_pipeline feasibility against
//      the device capacity;
//   3. re-prices the closed-form shortlist with the EXACT static traffic
//      mirror (core::lowcomm_exchange_traffic over the real octrees — the
//      same numbers a SimCluster run records);
//   4. in probe mode, runs short real micro-runs of the top candidates and
//      picks by measured compute + modeled wire time;
//   5. emits a ranked ExecutionPlan with predicted (and probed) costs.
//
// Winning plans are cached by the runtime layer (runtime/plan_provider.hpp)
// in the ResourceCache keyed by (shape, topology, device, accuracy, mode).
// The LC_PLANNER environment variable (off | analytic | probe) selects the
// mode process-wide; `off` bypasses planning entirely.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/topology.hpp"
#include "core/pipeline.hpp"
#include "device/device.hpp"

namespace lc::planner {

/// Planner operating mode (LC_PLANNER escape hatch).
enum class Mode {
  kOff,       ///< bypass the planner; callers use their own static params
  kAnalytic,  ///< model-only pricing (default)
  kProbe,     ///< analytic + real micro-runs of the top candidates
};

/// LC_PLANNER=off|analytic|probe (unset or unrecognised → analytic).
[[nodiscard]] Mode mode_from_env();
[[nodiscard]] const char* mode_name(Mode mode);

/// Decomposition family of a candidate.
enum class DecompKind {
  kBlock,   ///< the paper's k³ sub-domains + octree exchange (executable)
  kSlab,    ///< baseline distributed FFT, 1D slab partition (comparison row)
  kPencil,  ///< baseline distributed FFT, 2D pencil partition (comparison row)
};

/// Octree rate schedule of a block candidate.
enum class RateSchedule {
  kBanded,   ///< paper_default distance bands up to far_rate
  kUniform,  ///< one uniform exterior rate (Table 3 rows)
};

/// What to plan for.
struct PlanRequest {
  i64 n = 0;                                   ///< grid side (N³ problem)
  int ranks = 1;                               ///< worker count P
  comm::Topology topology = comm::Topology::flat(1);
  comm::HierarchicalLinkModel links{};         ///< per-level α-β params
  device::DeviceSpec device = device::DeviceSpec::unlimited();
  double max_rel_error = 0.05;                 ///< accuracy target (rel L2)
  /// Modeled local transform throughput, in point-passes per second per
  /// rank (one pass = one point through one 1D transform stage). Only the
  /// compute-vs-wire balance depends on it, not the candidate ordering
  /// within equal-compute families.
  double compute_rate_pps = 2e8;
  /// Template for fields the planner does not search over (interpolation,
  /// boundary band, dense halo).
  core::LowCommParams base{};
  /// Pinned mode: validate / repair exactly these params instead of
  /// searching (the service path for requests with explicit params). The
  /// planner only fixes a k that does not divide N and a batch that does
  /// not fit memory; everything else passes through unchanged.
  std::optional<core::LowCommParams> pinned;
};

/// One enumerated execution alternative.
struct Candidate {
  DecompKind kind = DecompKind::kBlock;
  RateSchedule schedule = RateSchedule::kBanded;
  core::ExchangeRoute route = core::ExchangeRoute::kFlat;
  core::LowCommParams params{};  ///< fully populated for kBlock
  [[nodiscard]] std::string name() const;
};

/// Analytic price of a candidate.
struct CandidateCost {
  bool feasible = false;          ///< memory + accuracy + divisibility
  std::string infeasible_reason;  ///< empty when feasible
  std::size_t memory_bytes = 0;   ///< per-rank peak (PipelinePlan actual)
  double predicted_rel_error = 0.0;
  double exchange_bytes = 0.0;    ///< modeled wire bytes, both levels
  comm::LevelTimes wire{};        ///< per-level α-β seconds
  double compute_seconds = 0.0;   ///< modeled per-rank compute
  bool exact_traffic = false;     ///< true → priced from the real octrees

  [[nodiscard]] double total_seconds() const noexcept {
    return wire.total_seconds() + compute_seconds;
  }
};

/// A candidate with its price (and probe measurement, when probed).
struct RankedCandidate {
  Candidate candidate;
  CandidateCost cost;
  double probed_seconds = 0.0;  ///< measured compute; 0 = not probed
};

/// The planner's output: the selected plan plus the full ranking.
struct ExecutionPlan {
  Candidate choice;         ///< best feasible kBlock candidate
  CandidateCost cost;       ///< its price
  double probed_seconds = 0.0;
  Mode mode = Mode::kAnalytic;
  std::vector<RankedCandidate> ranked;  ///< all candidates, best first

  [[nodiscard]] const core::LowCommParams& params() const noexcept {
    return choice.params;
  }
  [[nodiscard]] core::ExchangeRoute route() const noexcept {
    return choice.route;
  }
};

/// Probe hook: measured per-rank compute seconds for a candidate. The
/// default (probe.hpp) times a real single-sub-domain micro-run; tests
/// inject deterministic stubs.
using ProbeFn = std::function<double(const PlanRequest&, const Candidate&)>;

/// Wire codecs the planner enumerates as a plan dimension. When LC_WIRE is
/// explicitly set the grid collapses to that single codec (the operator
/// pinned the wire format; the planner must not override it). Otherwise it
/// spans the useful spectrum: off (bit-exact), fp32, bf16, q16. fp16 is
/// excluded from the default grid because its ±65504 range clamp makes its
/// error data-dependent; it stays selectable via LC_WIRE=fp16.
[[nodiscard]] std::vector<comm::WireCodec> default_codec_grid();

/// Planner tuning knobs.
struct PlannerConfig {
  Mode mode = Mode::kAnalytic;
  /// Exterior rates tried per (k, schedule). Rates above the accuracy
  /// target's tolerance are marked infeasible, not silently dropped.
  std::vector<i64> rate_grid = {2, 4, 8, 16, 32};
  /// Wire codecs tried per (k, schedule, r) block candidate; each one's
  /// quantization error joins the accuracy screen and its wire bytes the
  /// α-β pricing. See default_codec_grid().
  std::vector<comm::WireCodec> codec_grid = default_codec_grid();
  i64 min_subdomain = 4;
  /// Closed-form shortlist size re-priced with the exact traffic mirror.
  std::size_t exact_top = 4;
  /// Feasible block candidates micro-probed in kProbe mode.
  std::size_t probe_top = 3;
  /// Include slab/pencil baseline-FFT rows in the ranking (informational;
  /// the selected plan is always a block candidate).
  bool include_baselines = true;
  /// Probe implementation (defaults to probe_block_seconds).
  ProbeFn probe;
};

/// The planner. Stateless between calls; cheap to construct.
class Planner {
 public:
  explicit Planner(PlannerConfig config = {});

  [[nodiscard]] const PlannerConfig& config() const noexcept {
    return config_;
  }

  /// Enumerate and price every candidate, best (feasible, cheapest) first.
  [[nodiscard]] std::vector<RankedCandidate> enumerate(
      const PlanRequest& request) const;

  /// Full planning pass → selected plan. Throws InvalidArgument when no
  /// feasible block candidate exists (memory or accuracy exhausted).
  [[nodiscard]] ExecutionPlan plan(const PlanRequest& request) const;

 private:
  PlannerConfig config_;
};

/// ResourceCache key for a request: (shape, topology, device, accuracy,
/// mode, pinned knobs). Kernel-independent by design — plans are shared
/// across kernels because no cost model term depends on the kernel.
[[nodiscard]] std::string cache_key(const PlanRequest& request, Mode mode);

/// Closed-form accuracy heuristic (monotone increasing in the exterior
/// rate, decreasing in N/k): the planning-side stand-in for the paper's
/// measured ≤3% L2 error at its default hyperparameters.
[[nodiscard]] double predicted_rel_error(i64 n, i64 k, i64 exterior_rate,
                                         RateSchedule schedule);

/// Run a selected plan on a cluster (forwards params + route to
/// core::distributed_lowcomm_convolve).
[[nodiscard]] RealField execute_plan(
    comm::SimCluster& cluster, const RealField& input,
    std::shared_ptr<const green::KernelSpectrum> kernel,
    const ExecutionPlan& plan);

}  // namespace lc::planner
