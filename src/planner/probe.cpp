#include "planner/probe.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "core/accumulator.hpp"
#include "green/gaussian.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/field.hpp"

namespace lc::planner {

namespace {

/// Deterministic pseudo-random field (same LCG family the tests use): the
/// probe must measure identical work every time it prices a candidate.
RealField probe_input(const Grid3& grid) {
  RealField f(grid);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (double& v : f.span()) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    v = static_cast<double>(state >> 11) * 0x1.0p-53 - 0.5;
  }
  return f;
}

}  // namespace

double probe_block_seconds(const PlanRequest& request,
                           const Candidate& candidate) {
  LC_TRACE("planner.probe");
  LC_CHECK_ARG(candidate.kind == DecompKind::kBlock,
               "only block candidates can be probed");
  static obs::Counter& runs =
      obs::Registry::global().counter("planner.probe_runs");
  runs.add(1);

  const Grid3 grid = Grid3::cube(request.n);
  // Any smooth kernel exercises the same pipeline stages; the cost model is
  // kernel-independent, so the probe is too.
  auto kernel = std::make_shared<green::GaussianSpectrum>(grid, 2.0);
  core::LocalConvolverConfig config;
  config.batch = candidate.params.batch;
  config.pool = nullptr;  // measure one rank's serial pipeline
  const core::LowCommConvolution engine(grid, std::move(kernel),
                                        candidate.params, config);

  const RealField input = probe_input(grid);
  const std::size_t count = engine.decomposition().count();
  const std::size_t d = count / 2;  // central: representative octree shape
  const Box3 region = engine.decomposition().subdomain(d);

  const auto run_once = [&]() {
    std::vector<sampling::CompressedField> contrib;
    contrib.push_back(engine.convolve_one(input, d));
    const RealField acc = core::accumulate_region(
        contrib, region, candidate.params.interpolation, nullptr);
    return acc.span().size();
  };

  (void)run_once();  // warm the FFT plan and octree caches
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    Stopwatch sw;
    (void)run_once();
    best = std::min(best, sw.seconds());
  }

  const double owned = std::ceil(static_cast<double>(count) /
                                 static_cast<double>(std::max(request.ranks, 1)));
  return best * owned;
}

}  // namespace lc::planner
