// Scoped-span tracer (observability layer, DESIGN.md §13).
//
// Design goals, in order: (1) negligible cost when disabled — one relaxed
// atomic load and a branch per LC_TRACE site, or nothing at all when the
// translation unit is compiled with -DLC_OBS_OFF; (2) thread-safe recording
// with no locks on the hot path — each thread appends to its own bounded
// buffer, published with a release store of the count so a concurrent
// exporter reading with acquire sees fully-written slots only; (3) exact,
// lossless export — buffers are append-only (never overwritten), so when a
// buffer fills further events on that thread are counted as dropped rather
// than racing the exporter.
//
// Export is Chrome trace-event JSON ("X" complete events): load the file at
// https://ui.perfetto.dev (or chrome://tracing) to see per-thread nested
// span tracks for the whole pipeline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace lc::obs {

/// One completed span, timestamps in nanoseconds since the tracer's epoch.
///
/// `phase` follows the Chrome trace-event phase letters: 'X' complete span
/// (the default), 's'/'f' flow start/finish (cross-thread arrows stitching
/// a send to its matching recv; `flow_id` pairs them, `bytes` annotates the
/// payload). Flow events have dur_ns == 0.
struct TraceEvent {
  const char* name = nullptr;  ///< static string (macro literal)
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  char phase = 'X';
  std::uint64_t flow_id = 0;
  std::uint64_t bytes = 0;
};

/// Process-wide tracer with per-thread append-only buffers.
///
/// Recording is wait-free: the owning thread writes the next slot and
/// publishes it with a release store of the buffer count; no other thread
/// ever writes a buffer. `snapshot()`/`render_chrome_trace()` may run
/// concurrently with recording and see a consistent prefix of each thread's
/// events. `clear()` must only be called while no spans are being recorded.
class Tracer {
 public:
  /// Events retained per thread before further spans are dropped.
  static constexpr std::size_t kBufferCapacity = std::size_t{1} << 16;

  static Tracer& global() {
    static Tracer tracer;
    return tracer;
  }

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer was constructed (monotonic clock).
  [[nodiscard]] std::int64_t now_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Record a completed span. `name` must outlive the tracer (string
  /// literals only). Safe from any thread; drops (and counts) the event if
  /// this thread's buffer is full.
  void record(const char* name, std::int64_t start_ns,
              std::int64_t dur_ns) noexcept {
    push(TraceEvent{name, start_ns, dur_ns, 'X', 0, 0});
  }

  /// Record a flow endpoint ('s' on the sending thread, 'f' on the
  /// receiving one). The two halves share `flow_id`; Perfetto draws an
  /// arrow between the enclosing spans. `bytes` annotates the payload so
  /// per-link traffic can be re-summed from the trace alone.
  void record_flow(const char* name, std::uint64_t flow_id,
                   std::uint64_t bytes, bool finish) noexcept {
    push(TraceEvent{name, now_ns(), 0, finish ? 'f' : 's', flow_id, bytes});
  }

  /// Human-readable label for the calling thread's track ("rank 3",
  /// "dispatcher"). Exported as a Chrome `thread_name` metadata event so
  /// stitched multi-rank traces stay readable. `label` is copied.
  void set_thread_label(const std::string& label) {
    Buffer& buf = local_buffer();
    std::lock_guard<std::mutex> lock(mutex_);
    buf.label = label;
  }

  /// Total recorded events across all threads (consistent prefix).
  [[nodiscard]] std::size_t event_count() const {
    std::size_t total = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      total += buf->count.load(std::memory_order_acquire);
    }
    return total;
  }

  /// Events discarded because a thread's buffer was full.
  [[nodiscard]] std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Discard all recorded events. Only call while no thread is inside a
  /// traced scope (e.g. between benchmark phases with the pool idle).
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& buf : buffers_) {
      buf->count.store(0, std::memory_order_release);
      buf->dropped.store(0, std::memory_order_relaxed);
    }
    dropped_.store(0, std::memory_order_relaxed);
    warned_.store(false, std::memory_order_relaxed);
  }

  /// Events recorded by one thread, in recording order.
  struct ThreadEvents {
    std::uint32_t tid = 0;
    std::size_t dropped = 0;  ///< events this thread lost to a full buffer
    std::string label;        ///< track label from set_thread_label(), or ""
    std::vector<TraceEvent> events;
  };

  /// Copy out every thread's published events.
  [[nodiscard]] std::vector<ThreadEvents> snapshot() const {
    std::vector<ThreadEvents> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(buffers_.size());
    for (const auto& buf : buffers_) {
      const std::size_t n = buf->count.load(std::memory_order_acquire);
      ThreadEvents te;
      te.tid = buf->tid;
      te.dropped = buf->dropped.load(std::memory_order_relaxed);
      te.label = buf->label;
      te.events.assign(buf->slots.begin(),
                       buf->slots.begin() + static_cast<std::ptrdiff_t>(n));
      out.push_back(std::move(te));
    }
    return out;
  }

  /// Chrome trace-event JSON (Perfetto-loadable). Timestamps in
  /// microseconds with nanosecond precision ("%.3f" µs — the analyzer
  /// recovers exact nanoseconds via round(µs * 1000)). Spans are "X"
  /// complete events; cross-thread flows are "s"/"f" pairs bound to the
  /// enclosing spans; labeled threads get "M" thread_name metadata. The
  /// top-level `droppedEvents` field totals buffer-overflow losses so a
  /// truncated trace is detectable from the artifact alone.
  [[nodiscard]] std::string render_chrome_trace() const {
    const std::vector<ThreadEvents> threads = snapshot();
    std::string out;
    char line[320];
    std::snprintf(line, sizeof line,
                  "{\"displayTimeUnit\":\"ms\",\"droppedEvents\":%llu,"
                  "\"traceEvents\":[",
                  static_cast<unsigned long long>(dropped()));
    out += line;
    bool first = true;
    for (const ThreadEvents& te : threads) {
      if (!te.label.empty()) {
        std::snprintf(line, sizeof line,
                      "%s\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                      "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                      first ? "" : ",", te.tid, te.label.c_str());
        out += line;
        first = false;
      }
      for (const TraceEvent& ev : te.events) {
        if (ev.phase == 'X') {
          std::snprintf(line, sizeof line,
                        "%s\n{\"name\":\"%s\",\"cat\":\"lc\",\"ph\":\"X\","
                        "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                        first ? "" : ",", ev.name, te.tid,
                        static_cast<double>(ev.start_ns) * 1e-3,
                        static_cast<double>(ev.dur_ns) * 1e-3);
        } else {
          // Flow endpoints: 'f' binds to the enclosing slice ("bp":"e") so
          // Perfetto draws the arrow into the receiver's span.
          std::snprintf(line, sizeof line,
                        "%s\n{\"name\":\"%s\",\"cat\":\"lc\",\"ph\":\"%c\","
                        "\"id\":\"0x%llx\",\"pid\":1,\"tid\":%u,\"ts\":%.3f%s,"
                        "\"args\":{\"bytes\":%llu}}",
                        first ? "" : ",", ev.name, ev.phase,
                        static_cast<unsigned long long>(ev.flow_id), te.tid,
                        static_cast<double>(ev.start_ns) * 1e-3,
                        ev.phase == 'f' ? ",\"bp\":\"e\"" : "",
                        static_cast<unsigned long long>(ev.bytes));
        }
        out += line;
        first = false;
      }
    }
    out += "\n]}\n";
    return out;
  }

  /// Write the Chrome trace JSON to `path`. Returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = render_chrome_trace();
    const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = written == body.size() && std::fclose(f) == 0;
    if (!ok && written != body.size()) std::fclose(f);
    return ok;
  }

 private:
  struct Buffer {
    std::uint32_t tid = 0;
    std::atomic<std::size_t> count{0};
    std::atomic<std::size_t> dropped{0};
    std::string label;  // written/read under the tracer mutex only
    std::vector<TraceEvent> slots;
  };

  void push(const TraceEvent& ev) noexcept {
    Buffer& buf = local_buffer();
    const std::size_t i = buf.count.load(std::memory_order_relaxed);
    if (i >= kBufferCapacity) {
      buf.dropped.fetch_add(1, std::memory_order_relaxed);
      dropped_.fetch_add(1, std::memory_order_relaxed);
      Registry::global().counter("trace.dropped_events").add();
      if (!warned_.exchange(true, std::memory_order_relaxed)) {
        std::fprintf(stderr,
                     "[lc::obs] trace buffer full on thread %u: further "
                     "events on this thread will be dropped (capacity %zu "
                     "events/thread)\n",
                     buf.tid, kBufferCapacity);
      }
      return;
    }
    buf.slots[i] = ev;
    buf.count.store(i + 1, std::memory_order_release);
  }

  Buffer& local_buffer() {
    // One cached buffer per (thread, tracer). A thread touches at most a
    // couple of tracers (the global one, plus test-local instances), so a
    // linear scan over the cache is cheaper than any map. Keyed by the
    // tracer's never-reused id, not its address: a new tracer allocated at
    // a destroyed one's address must not inherit the stale buffer.
    thread_local std::vector<std::pair<std::uint64_t, std::shared_ptr<Buffer>>>
        cache;
    for (const auto& [tracer_id, buf] : cache) {
      if (tracer_id == id_) return *buf;
    }
    auto buf = std::make_shared<Buffer>();
    buf->slots.resize(kBufferCapacity);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      buf->tid = static_cast<std::uint32_t>(buffers_.size() + 1);
      buffers_.push_back(buf);
    }
    cache.emplace_back(id_, buf);
    return *buf;
  }

  static std::uint64_t next_tracer_id() noexcept {
    static std::atomic<std::uint64_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  const std::uint64_t id_ = next_tracer_id();
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mutex_;
  // shared_ptr keeps a buffer's events exportable after its thread exits.
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<bool> warned_{false};
};

/// RAII span against Tracer::global(): samples the clock on entry if the
/// tracer is enabled, records the completed span on exit.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    Tracer& tracer = Tracer::global();
    if (tracer.enabled()) {
      name_ = name;
      start_ns_ = tracer.now_ns();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer& tracer = Tracer::global();
      tracer.record(name_, start_ns_, tracer.now_ns() - start_ns_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace lc::obs

// LC_TRACE("stage.name"); — opens a span covering the rest of the enclosing
// scope. Compiles to nothing under -DLC_OBS_OFF; otherwise costs one relaxed
// load + branch when the tracer is disabled.
#if defined(LC_OBS_OFF)
#define LC_TRACE(name) \
  do {                 \
  } while (false)
#else
#define LC_OBS_CONCAT2(a, b) a##b
#define LC_OBS_CONCAT(a, b) LC_OBS_CONCAT2(a, b)
#define LC_TRACE(name) \
  ::lc::obs::ScopedSpan LC_OBS_CONCAT(lc_trace_span_, __LINE__)(name)
#endif
