// Scoped-span tracer (observability layer, DESIGN.md §13).
//
// Design goals, in order: (1) negligible cost when disabled — one relaxed
// atomic load and a branch per LC_TRACE site, or nothing at all when the
// translation unit is compiled with -DLC_OBS_OFF; (2) thread-safe recording
// with no locks on the hot path — each thread appends to its own bounded
// buffer, published with a release store of the count so a concurrent
// exporter reading with acquire sees fully-written slots only; (3) exact,
// lossless export — buffers are append-only (never overwritten), so when a
// buffer fills further events on that thread are counted as dropped rather
// than racing the exporter.
//
// Export is Chrome trace-event JSON ("X" complete events): load the file at
// https://ui.perfetto.dev (or chrome://tracing) to see per-thread nested
// span tracks for the whole pipeline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lc::obs {

/// One completed span, timestamps in nanoseconds since the tracer's epoch.
struct TraceEvent {
  const char* name = nullptr;  ///< static string (macro literal)
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

/// Process-wide tracer with per-thread append-only buffers.
///
/// Recording is wait-free: the owning thread writes the next slot and
/// publishes it with a release store of the buffer count; no other thread
/// ever writes a buffer. `snapshot()`/`render_chrome_trace()` may run
/// concurrently with recording and see a consistent prefix of each thread's
/// events. `clear()` must only be called while no spans are being recorded.
class Tracer {
 public:
  /// Events retained per thread before further spans are dropped.
  static constexpr std::size_t kBufferCapacity = std::size_t{1} << 16;

  static Tracer& global() {
    static Tracer tracer;
    return tracer;
  }

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer was constructed (monotonic clock).
  [[nodiscard]] std::int64_t now_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Record a completed span. `name` must outlive the tracer (string
  /// literals only). Safe from any thread; drops (and counts) the event if
  /// this thread's buffer is full.
  void record(const char* name, std::int64_t start_ns,
              std::int64_t dur_ns) noexcept {
    Buffer& buf = local_buffer();
    const std::size_t i = buf.count.load(std::memory_order_relaxed);
    if (i >= kBufferCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buf.slots[i] = TraceEvent{name, start_ns, dur_ns};
    buf.count.store(i + 1, std::memory_order_release);
  }

  /// Total recorded events across all threads (consistent prefix).
  [[nodiscard]] std::size_t event_count() const {
    std::size_t total = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      total += buf->count.load(std::memory_order_acquire);
    }
    return total;
  }

  /// Events discarded because a thread's buffer was full.
  [[nodiscard]] std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Discard all recorded events. Only call while no thread is inside a
  /// traced scope (e.g. between benchmark phases with the pool idle).
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& buf : buffers_) {
      buf->count.store(0, std::memory_order_release);
    }
    dropped_.store(0, std::memory_order_relaxed);
  }

  /// Events recorded by one thread, in recording order.
  struct ThreadEvents {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  /// Copy out every thread's published events.
  [[nodiscard]] std::vector<ThreadEvents> snapshot() const {
    std::vector<ThreadEvents> out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(buffers_.size());
    for (const auto& buf : buffers_) {
      const std::size_t n = buf->count.load(std::memory_order_acquire);
      ThreadEvents te;
      te.tid = buf->tid;
      te.events.assign(buf->slots.begin(),
                       buf->slots.begin() + static_cast<std::ptrdiff_t>(n));
      out.push_back(std::move(te));
    }
    return out;
  }

  /// Chrome trace-event JSON (Perfetto-loadable). Timestamps in
  /// microseconds with nanosecond precision.
  [[nodiscard]] std::string render_chrome_trace() const {
    const std::vector<ThreadEvents> threads = snapshot();
    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    char line[256];
    for (const ThreadEvents& te : threads) {
      for (const TraceEvent& ev : te.events) {
        std::snprintf(line, sizeof line,
                      "%s\n{\"name\":\"%s\",\"cat\":\"lc\",\"ph\":\"X\","
                      "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                      first ? "" : ",", ev.name, te.tid,
                      static_cast<double>(ev.start_ns) * 1e-3,
                      static_cast<double>(ev.dur_ns) * 1e-3);
        out += line;
        first = false;
      }
    }
    out += "\n]}\n";
    return out;
  }

  /// Write the Chrome trace JSON to `path`. Returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = render_chrome_trace();
    const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = written == body.size() && std::fclose(f) == 0;
    if (!ok && written != body.size()) std::fclose(f);
    return ok;
  }

 private:
  struct Buffer {
    std::uint32_t tid = 0;
    std::atomic<std::size_t> count{0};
    std::vector<TraceEvent> slots;
  };

  Buffer& local_buffer() {
    // One cached buffer per (thread, tracer). A thread touches at most a
    // couple of tracers (the global one, plus test-local instances), so a
    // linear scan over the cache is cheaper than any map.
    thread_local std::vector<std::pair<const Tracer*, std::shared_ptr<Buffer>>>
        cache;
    for (const auto& [tracer, buf] : cache) {
      if (tracer == this) return *buf;
    }
    auto buf = std::make_shared<Buffer>();
    buf->slots.resize(kBufferCapacity);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      buf->tid = static_cast<std::uint32_t>(buffers_.size() + 1);
      buffers_.push_back(buf);
    }
    cache.emplace_back(this, buf);
    return *buf;
  }

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  mutable std::mutex mutex_;
  // shared_ptr keeps a buffer's events exportable after its thread exits.
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> dropped_{0};
};

/// RAII span against Tracer::global(): samples the clock on entry if the
/// tracer is enabled, records the completed span on exit.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept {
    Tracer& tracer = Tracer::global();
    if (tracer.enabled()) {
      name_ = name;
      start_ns_ = tracer.now_ns();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer& tracer = Tracer::global();
      tracer.record(name_, start_ns_, tracer.now_ns() - start_ns_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace lc::obs

// LC_TRACE("stage.name"); — opens a span covering the rest of the enclosing
// scope. Compiles to nothing under -DLC_OBS_OFF; otherwise costs one relaxed
// load + branch when the tracer is disabled.
#if defined(LC_OBS_OFF)
#define LC_TRACE(name) \
  do {                 \
  } while (false)
#else
#define LC_OBS_CONCAT2(a, b) a##b
#define LC_OBS_CONCAT(a, b) LC_OBS_CONCAT2(a, b)
#define LC_TRACE(name) \
  ::lc::obs::ScopedSpan LC_OBS_CONCAT(lc_trace_span_, __LINE__)(name)
#endif
