// Metrics registry (observability layer, DESIGN.md §13).
//
// Three metric kinds, all lock-free to record:
//   Counter   — monotonically increasing u64 (events, bytes moved).
//   Gauge     — last-written double (sizes, occupancy).
//   Histogram — log-bucketed distribution of positive doubles with
//               p50/p95/p99 extraction. Buckets are derived straight from
//               the IEEE-754 representation: the biased exponent selects the
//               octave and the top 3 mantissa bits the sub-bucket, giving 8
//               sub-buckets per octave (bucket width 2^(1/8) ≈ 9%, so a
//               reported quantile is within ~4.5% of the true value).
//               Recording is one bit_cast, two shifts, and a relaxed
//               fetch_add — safe from any thread, bounded memory.
//
// Registry::global() hands out stable references by name; instrument sites
// cache them in function-local statics so steady-state cost is the atomic
// op alone. Snapshots render to JSON and Prometheus text exposition.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lc::obs {

/// Monotonic event/byte counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double value.
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + delta),
        std::memory_order_relaxed)) {
    }
  }
  /// Raise the gauge to `v` if it exceeds the stored value (lock-free max
  /// aggregation across threads; reset() rearms it). Used for high-water
  /// marks like the exchange codec's max quantisation error.
  void record_max(double v) noexcept {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (std::bit_cast<double>(cur) < v &&
           !bits_.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                        std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Log-bucketed histogram of positive doubles (see file comment).
class Histogram {
 public:
  static constexpr int kMinExp = -40;  ///< values below 2^-40 underflow
  static constexpr int kMaxExp = 40;   ///< values at/above 2^40 overflow
  static constexpr int kSubBuckets = 8;
  /// Index 0 underflows (incl. zero/negative/NaN); last index overflows.
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  /// Bucket index for a value; branch-free in the common in-range case.
  [[nodiscard]] static std::size_t bucket_of(double v) noexcept {
    if (!(v > 0.0)) return 0;
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    const int exp = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
    if (exp < kMinExp) return 0;
    if (exp >= kMaxExp) return kBuckets - 1;
    const int sub = static_cast<int>((bits >> 49) & 0x7);
    return 1 + static_cast<std::size_t>((exp - kMinExp) * kSubBuckets + sub);
  }

  /// Inclusive lower edge of bucket `i` (0 for the underflow bucket).
  [[nodiscard]] static double bucket_lower(std::size_t i) noexcept {
    if (i == 0) return 0.0;
    const std::size_t k = i - 1;
    const int exp = kMinExp + static_cast<int>(k) / kSubBuckets;
    const int sub = static_cast<int>(k) % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, exp);
  }

  /// Exclusive upper edge of bucket `i` (+inf for the overflow bucket).
  [[nodiscard]] static double bucket_upper(std::size_t i) noexcept {
    if (i + 1 >= kBuckets) return std::numeric_limits<double>::infinity();
    return bucket_lower(i + 1);
  }

  void record(double v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_add(sum_bits_, v);
    atomic_min(min_bits_, v);
    atomic_max(max_bits_, v);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }

  /// Point-in-time copy of the whole distribution.
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    [[nodiscard]] double mean() const noexcept {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// Quantile estimate, q in [0, 1]. Uses the nearest-rank sample's
    /// bucket midpoint, clamped to the observed [min, max] so single-sample
    /// and extreme quantiles are exact.
    [[nodiscard]] double quantile(double q) const noexcept {
      if (count == 0) return 0.0;
      auto rank = static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(count)));
      if (rank == 0) rank = 1;
      if (rank > count) rank = count;
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < kBuckets; ++i) {
        cum += buckets[i];
        if (cum >= rank) {
          double v;
          if (i == 0) {
            v = min;
          } else if (i + 1 == kBuckets) {
            v = max;
          } else {
            v = 0.5 * (bucket_lower(i) + bucket_upper(i));
          }
          if (v < min) v = min;
          if (v > max) v = max;
          return v;
        }
      }
      return max;
    }
  };

  [[nodiscard]] Snapshot snapshot() const {
    Snapshot s;
    s.count = count();
    s.sum = sum();
    if (s.count > 0) {
      s.min = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
      s.max = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
    }
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

  [[nodiscard]] double quantile(double q) const { return snapshot().quantile(q); }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_bits_.store(std::bit_cast<std::uint64_t>(0.0),
                    std::memory_order_relaxed);
    min_bits_.store(std::bit_cast<std::uint64_t>(
                        std::numeric_limits<double>::infinity()),
                    std::memory_order_relaxed);
    max_bits_.store(std::bit_cast<std::uint64_t>(
                        -std::numeric_limits<double>::infinity()),
                    std::memory_order_relaxed);
  }

 private:
  static void atomic_add(std::atomic<std::uint64_t>& bits, double v) noexcept {
    std::uint64_t cur = bits.load(std::memory_order_relaxed);
    while (!bits.compare_exchange_weak(
        cur, std::bit_cast<std::uint64_t>(std::bit_cast<double>(cur) + v),
        std::memory_order_relaxed)) {
    }
  }
  static void atomic_min(std::atomic<std::uint64_t>& bits, double v) noexcept {
    std::uint64_t cur = bits.load(std::memory_order_relaxed);
    while (v < std::bit_cast<double>(cur) &&
           !bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                       std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<std::uint64_t>& bits, double v) noexcept {
    std::uint64_t cur = bits.load(std::memory_order_relaxed);
    while (v > std::bit_cast<double>(cur) &&
           !bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                       std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
  std::atomic<std::uint64_t> min_bits_{
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity())};
  std::atomic<std::uint64_t> max_bits_{
      std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity())};
};

/// Name → metric registry. Lookup takes a mutex; references returned are
/// stable for the registry's lifetime, so call sites cache them:
///
///   static obs::Counter& hits = obs::Registry::global().counter("cache.hits");
///   hits.add();
///
/// Naming convention: lowercase dotted paths, `<subsystem>.<what>[_unit]`,
/// e.g. "pool.queue_wait_seconds", "comm.bytes_sent" (see DESIGN.md §13).
class Registry {
 public:
  static Registry& global() {
    // Intentionally leaked: detached pool workers may still be registering
    // metrics while static destructors run at exit, so the global registry
    // must never be destroyed (classic static-destruction-order race).
    static Registry* registry = new Registry();
    return *registry;
  }

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }
  Gauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
  }
  Histogram& histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
  }

  /// Zero every metric's value. Registrations (and references) survive.
  void reset_values() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
  }

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  [[nodiscard]] std::string render_json() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    char buf[160];
    for (const auto& [name, c] : counters_) {
      std::snprintf(buf, sizeof buf, "%s\n    \"%s\": %llu",
                    first ? "" : ",", name.c_str(),
                    static_cast<unsigned long long>(c->value()));
      out += buf;
      first = false;
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
      std::snprintf(buf, sizeof buf, "%s\n    \"%s\": %.9g", first ? "" : ",",
                    name.c_str(), g->value());
      out += buf;
      first = false;
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
      const Histogram::Snapshot s = h->snapshot();
      std::snprintf(buf, sizeof buf,
                    "%s\n    \"%s\": {\"count\": %llu, \"sum\": %.9g, "
                    "\"mean\": %.9g, \"min\": %.9g, \"max\": %.9g, ",
                    first ? "" : ",", name.c_str(),
                    static_cast<unsigned long long>(s.count), s.sum, s.mean(),
                    s.min, s.max);
      out += buf;
      std::snprintf(buf, sizeof buf,
                    "\"p50\": %.9g, \"p95\": %.9g, \"p99\": %.9g}",
                    s.quantile(0.50), s.quantile(0.95), s.quantile(0.99));
      out += buf;
      first = false;
    }
    out += "\n  }\n}\n";
    return out;
  }

  /// Prometheus text exposition; histograms as summary-style quantiles.
  /// Dots in metric names become underscores, prefixed "lc_".
  [[nodiscard]] std::string render_prometheus() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    char buf[192];
    for (const auto& [name, c] : counters_) {
      const std::string n = prom_name(name);
      out += "# TYPE " + n + " counter\n";
      std::snprintf(buf, sizeof buf, "%s %llu\n", n.c_str(),
                    static_cast<unsigned long long>(c->value()));
      out += buf;
    }
    for (const auto& [name, g] : gauges_) {
      const std::string n = prom_name(name);
      out += "# TYPE " + n + " gauge\n";
      std::snprintf(buf, sizeof buf, "%s %.9g\n", n.c_str(), g->value());
      out += buf;
    }
    for (const auto& [name, h] : histograms_) {
      const std::string n = prom_name(name);
      const Histogram::Snapshot s = h->snapshot();
      out += "# TYPE " + n + " summary\n";
      std::snprintf(buf, sizeof buf,
                    "%s{quantile=\"0.5\"} %.9g\n"
                    "%s{quantile=\"0.95\"} %.9g\n"
                    "%s{quantile=\"0.99\"} %.9g\n",
                    n.c_str(), s.quantile(0.50), n.c_str(), s.quantile(0.95),
                    n.c_str(), s.quantile(0.99));
      out += buf;
      std::snprintf(buf, sizeof buf, "%s_sum %.9g\n%s_count %llu\n", n.c_str(),
                    s.sum, n.c_str(),
                    static_cast<unsigned long long>(s.count));
      out += buf;
      // Real cumulative histogram exposition under a sibling name — a
      // summary and a histogram cannot legally share a metric family, and
      // the quantile lines above are what the existing CI checker reads.
      // Buckets are sparse: only octave edges that saw samples are listed
      // (plus the mandatory +Inf), keeping the page small while letting
      // Prometheus/Grafana aggregate with histogram_quantile().
      const std::string hn = n + "_hist";
      out += "# TYPE " + hn + " histogram\n";
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        if (s.buckets[i] == 0) continue;
        cum += s.buckets[i];
        const double upper = Histogram::bucket_upper(i);
        if (std::isinf(upper)) continue;  // folded into +Inf below
        std::snprintf(buf, sizeof buf, "%s_bucket{le=\"%.9g\"} %llu\n",
                      hn.c_str(), upper,
                      static_cast<unsigned long long>(cum));
        out += buf;
      }
      std::snprintf(buf, sizeof buf,
                    "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %.9g\n"
                    "%s_count %llu\n",
                    hn.c_str(), static_cast<unsigned long long>(s.count),
                    hn.c_str(), s.sum, hn.c_str(),
                    static_cast<unsigned long long>(s.count));
      out += buf;
    }
    return out;
  }

  bool write_json(const std::string& path) const {
    return write_file(path, render_json());
  }
  bool write_prometheus(const std::string& path) const {
    return write_file(path, render_prometheus());
  }

 private:
  static std::string prom_name(const std::string& name) {
    std::string out = "lc_";
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
      out += ok ? c : '_';
    }
    return out;
  }
  static bool write_file(const std::string& path, const std::string& body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = written == body.size() && std::fclose(f) == 0;
    if (!ok && written != body.size()) std::fclose(f);
    return ok;
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace lc::obs
