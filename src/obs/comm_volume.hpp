// Measured-vs-model communication-volume accounting (DESIGN.md §13c).
//
// The paper's whole claim is Eqn 1 vs Eqn 6: a dense distributed FFT moves
// ~2·N³ points per transform pair, while the low-comm pipeline ships one
// compressed field of k³ + (N³−k³)/r³ points per sub-domain in a single
// exchange. comm::CostModel *predicts* those volumes; this report *measures*
// them from the octrees the engine actually builds (and, optionally, from
// the bytes a SimCluster run actually moved) and puts prediction and
// measurement side by side.
//
// Three measured quantities, largest to smallest:
//   wire_bytes    — bytes crossing links in the personalised all-to-all,
//                   including the cell-granularity fanout (a coarse cell
//                   intersecting several ranks' regions is sent to each).
//   payload_bytes — each retained sample counted once per sub-domain; the
//                   direct measured counterpart of Eqn 6's per-node send
//                   volume. Exceeds the model only by the octree's
//                   edge-inclusive top faces ((s/r+1)³ vs (s/r)³ per cell).
//   unique_bytes  — interior-lattice samples only ((s/r)³ per cell): the
//                   volume an edge-exclusive wire format would ship. For a
//                   uniform exterior rate this equals Eqn 6 exactly.
#pragma once

#include <cstddef>
#include <string>

#include "common/table.hpp"
#include "core/pipeline.hpp"

namespace lc::obs {

/// Side-by-side measured vs modeled exchange volume for one configuration.
struct CommVolumeReport {
  i64 n = 0;                    ///< grid edge
  i64 k = 0;                    ///< sub-domain edge
  double r = 0.0;               ///< effective exterior downsampling rate
  int workers = 0;              ///< ranks used for the wire-byte measurement
  std::size_t subdomains = 0;   ///< D = (n/k)³

  std::size_t payload_bytes = 0;  ///< Σ_d octree(d).total_samples() · 8
  std::size_t unique_bytes = 0;   ///< Σ_d Σ_cells (side/rate)³ · 8
  std::size_t wire_bytes = 0;     ///< exchange bytes incl. cell fanout

  // Wire-codec accounting (DESIGN.md §17). `codec` is the engine's active
  // LC_WIRE codec; wire_bytes above is already priced under it.
  // `encoded_payload_bytes` re-prices payload_bytes under the codec (every
  // sample once per sub-domain, per-cell q16 scale headers included), so
  // measured-vs-model rows stay truthful when samples no longer cost 8
  // bytes each. `cells` is the total octree cell count behind the header
  // term.
  comm::WireCodec codec = comm::WireCodec::kOff;
  std::size_t encoded_payload_bytes = 0;
  std::size_t cells = 0;

  // Per-level split of wire_bytes when a topology is attached (the
  // measure_comm_volume overload taking a comm::Topology): how much of the
  // exchange crosses the expensive inter-node links vs stays inside nodes.
  // `flat_inter_wire_bytes` is the inter-node volume the FLAT route would
  // move on the same topology — the baseline the hierarchical dedup beats.
  int nodes = 0;  ///< 0 when no topology was attached
  std::size_t intra_wire_bytes = 0;
  std::size_t inter_wire_bytes = 0;
  std::size_t flat_inter_wire_bytes = 0;

  double model_bytes = 0.0;  ///< Eqn 6 per sub-domain · D · 8
  double dense_bytes = 0.0;  ///< Eqn 1: 2 · N³ · 8 (one transform pair)

  /// Per-sub-domain measured payload over the Eqn 6 prediction.
  [[nodiscard]] double measured_over_model() const noexcept {
    return model_bytes <= 0.0
               ? 0.0
               : static_cast<double>(payload_bytes) / model_bytes;
  }
  /// Interior-lattice volume over the Eqn 6 prediction (≈1 for uniform r).
  [[nodiscard]] double unique_over_model() const noexcept {
    return model_bytes <= 0.0
               ? 0.0
               : static_cast<double>(unique_bytes) / model_bytes;
  }
  /// The paper's headline: dense-FFT volume over measured payload.
  [[nodiscard]] double reduction_vs_dense() const noexcept {
    return payload_bytes == 0
               ? 0.0
               : dense_bytes / static_cast<double>(payload_bytes);
  }
  /// True when measured payload agrees with the Eqn 6 model within
  /// `tolerance` (e.g. 0.10 for ±10%).
  [[nodiscard]] bool within(double tolerance) const noexcept {
    const double ratio = measured_over_model();
    return ratio >= 1.0 - tolerance && ratio <= 1.0 + tolerance;
  }
  /// Flat-route inter-node bytes over this route's (>1 when the
  /// hierarchical dedup wins; 0 when no topology was attached).
  [[nodiscard]] double inter_reduction_vs_flat() const noexcept {
    return inter_wire_bytes == 0
               ? 0.0
               : static_cast<double>(flat_inter_wire_bytes) /
                     static_cast<double>(inter_wire_bytes);
  }

  [[nodiscard]] TextTable table() const;
  [[nodiscard]] std::string to_json() const;
};

/// Measure the exchange volume of `engine`'s configuration by walking its
/// per-sub-domain octrees (no convolution is run). `workers` sets the rank
/// count for the static wire-byte computation (core::lowcomm_exchange_bytes).
[[nodiscard]] CommVolumeReport measure_comm_volume(
    const core::LowCommConvolution& engine, int workers);

/// Same, but take the wire bytes actually recorded by a SimCluster run
/// (cluster.stats().bytes_sent after distributed_lowcomm_convolve) instead
/// of recomputing them.
[[nodiscard]] CommVolumeReport measure_comm_volume(
    const core::LowCommConvolution& engine, int workers,
    std::size_t measured_wire_bytes);

/// Topology-aware measurement: wire bytes come from the per-level static
/// mirror (core::lowcomm_exchange_traffic) for the route `route` would
/// take on `topo`, filling the per-level fields and the flat-route
/// inter-node baseline alongside the flat-topology quantities.
[[nodiscard]] CommVolumeReport measure_comm_volume(
    const core::LowCommConvolution& engine, const comm::Topology& topo,
    core::ExchangeRoute route = core::ExchangeRoute::kAuto);

}  // namespace lc::obs
