// Plan-vs-actual telemetry (observability layer, DESIGN.md §18).
//
// Every distributed convolution — whether driven directly through
// core::distributed_lowcomm_convolve or through the ConvolutionService —
// finishes by emitting one PlanOutcome record: the planner/cost-model
// predictions (compute seconds, per-level wire seconds, exact mirror bytes,
// memory plan, error bound) paired with what actually happened (wall and
// compute time, executed CommStats bytes/messages, measured memory peak,
// realized quantization error, barrier/recv waits). Records append to a
// JSONL history file selected by LC_TELEMETRY=<path> (unset or "off"
// disables the file; the drift gauges below update either way), one
// self-contained JSON object per line, written under a mutex with a single
// fwrite so concurrent emitters can never tear a line — an aborted run's
// record is as well-formed as a clean one.
//
// The history is the planner's learning signal: planner/calibration.hpp
// fits a measured compute rate and per-level α-β from it and feeds the fit
// back through LC_CALIBRATION, closing the loop that ROADMAP item 2 left
// open. This header is intentionally header-only so core/pipeline.cpp (which
// lc_obs itself links against) can emit records without a layering cycle;
// only the JSONL *reader* (used by the fitter, tools, and tests) lives in
// telemetry.cpp inside lc_obs.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace lc::obs {

/// One plan-vs-actual record. Flat by design: every field is a scalar so
/// the line is parseable by the dependency-free scanners in telemetry.cpp
/// and tools/check_obs_outputs.py. "pred_*" fields are model outputs frozen
/// before the run; "meas_*" fields are read back from executed stats.
struct PlanOutcome {
  int v = 1;                 ///< record schema version
  std::string source;        ///< "pipeline" | "service"
  bool aborted = false;      ///< run threw (rank abort); meas_* are partial

  // Shape of the run.
  std::int64_t n = 0;        ///< grid side
  int ranks = 0;             ///< cluster ranks (1 = local service request)
  int nodes = 0;             ///< topology nodes
  std::int64_t k = 0;        ///< sub-domain side
  int far_rate = 0;          ///< exterior sampling rate
  std::string schedule;      ///< "banded" | "uniform"
  std::string route;         ///< "flat" | "hierarchical" | "local"
  std::string wire;          ///< wire codec name
  std::int64_t batch = 0;

  // Predictions (cost model / winning ExecutionPlan).
  double pred_compute_s = 0.0;
  double pred_point_passes = 0.0;  ///< compute model numerator (rate fit)
  double pred_rate_pps = 0.0;      ///< rate the prediction was priced at
  double pred_wire_s = 0.0;
  double pred_intra_s = 0.0;
  double pred_inter_s = 0.0;
  std::int64_t pred_bytes = 0;
  std::int64_t pred_intra_bytes = 0;
  std::int64_t pred_inter_bytes = 0;
  std::int64_t pred_intra_msgs = 0;
  std::int64_t pred_inter_msgs = 0;
  std::int64_t pred_memory_b = 0;
  double pred_rel_error = 0.0;

  // Realized values.
  double meas_wall_s = 0.0;
  double meas_compute_s = 0.0;     ///< max-over-ranks local convolve time
  double meas_wire_s = 0.0;        ///< modeled-α-β time of executed traffic
  double meas_intra_wire_s = 0.0;
  double meas_inter_wire_s = 0.0;
  std::int64_t meas_bytes = 0;
  std::int64_t meas_intra_bytes = 0;
  std::int64_t meas_inter_bytes = 0;
  std::int64_t meas_intra_msgs = 0;
  std::int64_t meas_inter_msgs = 0;
  std::int64_t meas_memory_peak_b = 0;
  double meas_max_quant_error = 0.0;
  double meas_barrier_wait_s = 0.0;
  double meas_recv_wait_s = 0.0;
};

/// Shared compute model: transform point-passes for one k³ sub-domain of an
/// N³ problem whose octree retains `planes` z-planes. The xy stage touches
/// n²·k points, the z stage runs every pencil (n³), and only the retained
/// planes return through the 2D inverse; log₂n passes each; the Hermitian
/// half-spectrum path scales all three by (n/2+1)/n. This is THE formula the
/// planner prices compute with — pipeline telemetry uses the same function
/// so a rate fitted from history is directly substitutable for
/// PlanRequest::compute_rate_pps.
[[nodiscard]] inline double modeled_point_passes(std::int64_t n,
                                                 std::int64_t k,
                                                 std::size_t planes,
                                                 bool half_spectrum) {
  const double lg = std::log2(static_cast<double>(n));
  const double n2 = static_cast<double>(n) * static_cast<double>(n);
  const double real_scale =
      half_spectrum
          ? static_cast<double>(n / 2 + 1) / static_cast<double>(n)
          : 1.0;
  return (n2 * static_cast<double>(k) + n2 * static_cast<double>(n) +
          n2 * static_cast<double>(planes)) *
         lg * real_scale;
}

/// Serialize one record as a single JSON line (no trailing newline).
[[nodiscard]] inline std::string to_json_line(const PlanOutcome& o) {
  std::string out;
  out.reserve(1024);
  char buf[160];
  const auto num = [&](const char* key, double v) {
    std::snprintf(buf, sizeof buf, "\"%s\":%.9g,", key, v);
    out += buf;
  };
  const auto integer = [&](const char* key, std::int64_t v) {
    std::snprintf(buf, sizeof buf, "\"%s\":%lld,", key,
                  static_cast<long long>(v));
    out += buf;
  };
  const auto str = [&](const char* key, const std::string& v) {
    out += '"';
    out += key;
    out += "\":\"";
    out += v;  // values are short enum-ish names, never need escaping
    out += "\",";
  };
  out += '{';
  integer("v", o.v);
  str("source", o.source);
  out += o.aborted ? "\"aborted\":true," : "\"aborted\":false,";
  integer("n", o.n);
  integer("ranks", o.ranks);
  integer("nodes", o.nodes);
  integer("k", o.k);
  integer("far_rate", o.far_rate);
  str("schedule", o.schedule);
  str("route", o.route);
  str("wire", o.wire);
  integer("batch", o.batch);
  num("pred_compute_s", o.pred_compute_s);
  num("pred_point_passes", o.pred_point_passes);
  num("pred_rate_pps", o.pred_rate_pps);
  num("pred_wire_s", o.pred_wire_s);
  num("pred_intra_s", o.pred_intra_s);
  num("pred_inter_s", o.pred_inter_s);
  integer("pred_bytes", o.pred_bytes);
  integer("pred_intra_bytes", o.pred_intra_bytes);
  integer("pred_inter_bytes", o.pred_inter_bytes);
  integer("pred_intra_msgs", o.pred_intra_msgs);
  integer("pred_inter_msgs", o.pred_inter_msgs);
  integer("pred_memory_b", o.pred_memory_b);
  num("pred_rel_error", o.pred_rel_error);
  num("meas_wall_s", o.meas_wall_s);
  num("meas_compute_s", o.meas_compute_s);
  num("meas_wire_s", o.meas_wire_s);
  num("meas_intra_wire_s", o.meas_intra_wire_s);
  num("meas_inter_wire_s", o.meas_inter_wire_s);
  integer("meas_bytes", o.meas_bytes);
  integer("meas_intra_bytes", o.meas_intra_bytes);
  integer("meas_inter_bytes", o.meas_inter_bytes);
  integer("meas_intra_msgs", o.meas_intra_msgs);
  integer("meas_inter_msgs", o.meas_inter_msgs);
  integer("meas_memory_peak_b", o.meas_memory_peak_b);
  num("meas_max_quant_error", o.meas_max_quant_error);
  num("meas_barrier_wait_s", o.meas_barrier_wait_s);
  num("meas_recv_wait_s", o.meas_recv_wait_s);
  out.back() = '}';  // replace the trailing comma
  return out;
}

/// Process-wide JSONL history sink. The path comes from LC_TELEMETRY at
/// first use (unset or "off" → disabled); tests and tools may repoint it
/// with set_path(). Appends open the file in "a" mode and write the whole
/// line (including '\n') with one fwrite under the mutex, then close — no
/// buffered tail can be lost to an abort, and concurrent emitters (service
/// dispatcher vs direct pipeline calls) interleave only at line boundaries.
class TelemetrySink {
 public:
  static TelemetrySink& global() {
    static TelemetrySink* sink = new TelemetrySink();  // leak: see Registry
    return *sink;
  }

  TelemetrySink() {
    const char* env = std::getenv("LC_TELEMETRY");
    if (env != nullptr && env[0] != '\0' && std::string(env) != "off") {
      path_ = env;
    }
  }
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  [[nodiscard]] bool enabled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return !path_.empty();
  }
  [[nodiscard]] std::string path() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return path_;
  }
  /// Repoint (or disable, with "") the sink. Testing / tooling hook.
  void set_path(const std::string& path) {
    std::lock_guard<std::mutex> lock(mutex_);
    path_ = path == "off" ? std::string() : path;
  }

  /// Append one line. Returns false when disabled or on I/O failure.
  bool append_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (path_.empty()) return false;
    std::FILE* f = std::fopen(path_.c_str(), "a");
    if (f == nullptr) return false;
    std::string full = line;
    full += '\n';
    const bool ok = std::fwrite(full.data(), 1, full.size(), f) == full.size();
    return (std::fclose(f) == 0) && ok;
  }

 private:
  mutable std::mutex mutex_;
  std::string path_;
};

[[nodiscard]] inline bool telemetry_enabled() {
  return TelemetrySink::global().enabled();
}

/// Emit a record: update the drift gauges (always — they are free and make
/// prediction drift visible in every metrics snapshot) and append the JSONL
/// line when the sink is enabled.
inline void record_plan_outcome(const PlanOutcome& o) {
  Registry& reg = Registry::global();
  const auto ratio_gauge = [&](const char* name, double pred, double meas) {
    if (meas > 0.0 && pred > 0.0) reg.gauge(name).set(pred / meas);
  };
  ratio_gauge("planner.pred_over_actual_compute", o.pred_compute_s,
              o.meas_compute_s);
  ratio_gauge("planner.pred_over_actual_wire", o.pred_wire_s, o.meas_wire_s);
  ratio_gauge("planner.pred_over_actual_bytes",
              static_cast<double>(o.pred_bytes),
              static_cast<double>(o.meas_bytes));
  ratio_gauge("planner.pred_over_actual_memory",
              static_cast<double>(o.pred_memory_b),
              static_cast<double>(o.meas_memory_peak_b));
  reg.counter("telemetry.records").add();
  if (o.aborted) reg.counter("telemetry.aborted_records").add();
  TelemetrySink::global().append_line(to_json_line(o));
}

/// Parse every well-formed record line of a JSONL history file (reader side
/// — telemetry.cpp, lc_obs). Unparseable lines are skipped, not fatal: the
/// file may be mid-append by another process.
[[nodiscard]] std::vector<PlanOutcome> read_plan_outcomes(
    const std::string& path);

/// Parse one JSON line; returns false if it is not a PlanOutcome record.
[[nodiscard]] bool parse_plan_outcome(const std::string& line,
                                      PlanOutcome& out);

}  // namespace lc::obs
