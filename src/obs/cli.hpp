// Shared --trace/--metrics/--prometheus flag handling for benches and
// examples. Header-only so tools can adopt it without linking lc_obs.
//
//   auto obs_cli = lc::obs::ObsCli::parse(argc, argv);  // enables tracing
//   ... run instrumented work ...
//   obs_cli.finish();  // writes the requested files, prints their paths
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lc::obs {

/// Parsed observability output options. Unknown arguments are ignored, so
/// this composes with each tool's own flag handling.
struct ObsCli {
  std::string trace_path;
  std::string metrics_path;
  std::string prometheus_path;

  static ObsCli parse(int argc, char** argv) {
    ObsCli cli;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--trace") == 0) {
        cli.trace_path = argv[i + 1];
      } else if (std::strcmp(argv[i], "--metrics") == 0) {
        cli.metrics_path = argv[i + 1];
      } else if (std::strcmp(argv[i], "--prometheus") == 0) {
        cli.prometheus_path = argv[i + 1];
      }
    }
    if (!cli.trace_path.empty()) Tracer::global().enable();
    return cli;
  }

  /// Write whichever outputs were requested; report paths (and any dropped
  /// trace events) on stdout.
  void finish() const {
    if (!trace_path.empty()) {
      const Tracer& tracer = Tracer::global();
      if (tracer.write_chrome_trace(trace_path)) {
        std::printf("trace: %zu events -> %s (load at ui.perfetto.dev)\n",
                    tracer.event_count(), trace_path.c_str());
        if (tracer.dropped() > 0) {
          std::printf("trace: %zu events dropped (per-thread buffer full)\n",
                      tracer.dropped());
        }
      } else {
        std::fprintf(stderr, "trace: failed to write %s\n", trace_path.c_str());
      }
    }
    if (!metrics_path.empty()) {
      if (Registry::global().write_json(metrics_path)) {
        std::printf("metrics: %s\n", metrics_path.c_str());
      } else {
        std::fprintf(stderr, "metrics: failed to write %s\n",
                     metrics_path.c_str());
      }
    }
    if (!prometheus_path.empty()) {
      if (Registry::global().write_prometheus(prometheus_path)) {
        std::printf("metrics (prometheus): %s\n", prometheus_path.c_str());
      } else {
        std::fprintf(stderr, "metrics: failed to write %s\n",
                     prometheus_path.c_str());
      }
    }
  }
};

}  // namespace lc::obs
