#include "obs/comm_volume.hpp"

#include <cstdio>

#include "comm/cost_model.hpp"
#include "common/check.hpp"

namespace lc::obs {
namespace {

CommVolumeReport measure_impl(const core::LowCommConvolution& engine,
                              int workers, std::size_t wire_bytes) {
  LC_CHECK_ARG(workers >= 1, "measure_comm_volume: workers must be >= 1");
  const core::DomainDecomposition& decomp = engine.decomposition();
  const Grid3& grid = decomp.grid();

  CommVolumeReport rep;
  rep.n = grid.nx;
  rep.k = decomp.subdomain_size();
  rep.workers = workers;
  rep.subdomains = decomp.count();

  // Effective exterior rate of the actual policy (exact for uniform
  // policies, the volume-weighted average for banded ones). Sub-domains are
  // congruent under the policy's distance bands, so one is representative.
  const sampling::SamplingPolicy policy = engine.params().make_policy();
  rep.r = policy.effective_exterior_rate(grid, decomp.subdomain(0));

  rep.codec = engine.params().wire;
  for (std::size_t d = 0; d < decomp.count(); ++d) {
    const auto tree = engine.octree_for(d);
    rep.payload_bytes += tree->total_samples() * sizeof(double);
    rep.cells += tree->cells().size();
    for (const sampling::OctreeCell& cell : tree->cells()) {
      const std::size_t interior =
          static_cast<std::size_t>(cell.side / cell.rate);
      rep.unique_bytes += interior * interior * interior * sizeof(double);
    }
    rep.encoded_payload_bytes +=
        tree->total_samples() * comm::codec_sample_bytes(rep.codec) +
        tree->cells().size() * comm::codec_cell_header_bytes(rep.codec);
  }
  rep.wire_bytes = wire_bytes;

  const double n = static_cast<double>(rep.n);
  rep.model_bytes = comm::lowcomm_exchange_points(rep.n, rep.k, rep.r) *
                    static_cast<double>(rep.subdomains) *
                    static_cast<double>(sizeof(double));
  rep.dense_bytes = 2.0 * n * n * n * static_cast<double>(sizeof(double));
  return rep;
}

}  // namespace

CommVolumeReport measure_comm_volume(const core::LowCommConvolution& engine,
                                     int workers) {
  return measure_impl(engine, workers,
                      core::lowcomm_exchange_bytes(engine, workers));
}

CommVolumeReport measure_comm_volume(const core::LowCommConvolution& engine,
                                     int workers,
                                     std::size_t measured_wire_bytes) {
  return measure_impl(engine, workers, measured_wire_bytes);
}

CommVolumeReport measure_comm_volume(const core::LowCommConvolution& engine,
                                     const comm::Topology& topo,
                                     core::ExchangeRoute route) {
  const comm::LevelTraffic traffic =
      core::lowcomm_exchange_traffic(engine, topo, route);
  CommVolumeReport rep =
      measure_impl(engine, topo.ranks(), traffic.total_bytes());
  rep.nodes = topo.nodes();
  rep.intra_wire_bytes = traffic.intra_bytes;
  rep.inter_wire_bytes = traffic.inter_bytes;
  rep.flat_inter_wire_bytes =
      core::lowcomm_exchange_traffic(engine, topo, core::ExchangeRoute::kFlat)
          .inter_bytes;
  return rep;
}

TextTable CommVolumeReport::table() const {
  TextTable t("Communication volume: measured vs model (n=" +
              std::to_string(n) + ", k=" + std::to_string(k) +
              ", r=" + format_fixed(r, 2) + ", D=" + std::to_string(subdomains) +
              ", P=" + std::to_string(workers) + ")");
  t.header({"quantity", "GB", "vs Eqn 6"});
  t.row({"dense FFT baseline (Eqn 1)", format_bytes_gb(dense_bytes),
         format_fixed(model_bytes > 0.0 ? dense_bytes / model_bytes : 0.0, 2) +
             "x"});
  t.row({"model (Eqn 6, all sub-domains)", format_bytes_gb(model_bytes),
         "1.00x"});
  t.row({"measured payload (octrees)",
         format_bytes_gb(static_cast<double>(payload_bytes)),
         format_fixed(measured_over_model(), 2) + "x"});
  t.row({"measured interior lattice",
         format_bytes_gb(static_cast<double>(unique_bytes)),
         format_fixed(unique_over_model(), 2) + "x"});
  if (codec != comm::WireCodec::kOff) {
    t.row({std::string("measured payload (") + comm::codec_name(codec) +
               " encoded, " + std::to_string(cells) + " cells)",
           format_bytes_gb(static_cast<double>(encoded_payload_bytes)),
           format_fixed(model_bytes > 0.0
                            ? static_cast<double>(encoded_payload_bytes) /
                                  model_bytes
                            : 0.0,
                        2) +
               "x"});
  }
  t.row({std::string("measured on the wire (fanout, ") +
             comm::codec_name(codec) + ")",
         format_bytes_gb(static_cast<double>(wire_bytes)),
         format_fixed(model_bytes > 0.0
                          ? static_cast<double>(wire_bytes) / model_bytes
                          : 0.0,
                      2) +
             "x"});
  t.row({"reduction vs dense", format_fixed(reduction_vs_dense(), 1) + "x",
         ""});
  if (nodes > 0) {
    t.row({"  wire, intra-node (" + std::to_string(nodes) + " nodes)",
           format_bytes_gb(static_cast<double>(intra_wire_bytes)), ""});
    t.row({"  wire, inter-node",
           format_bytes_gb(static_cast<double>(inter_wire_bytes)),
           format_fixed(inter_reduction_vs_flat(), 2) + "x < flat"});
  }
  return t;
}

std::string CommVolumeReport::to_json() const {
  char buf[1536];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"n\": %lld,\n"
      "  \"k\": %lld,\n"
      "  \"r\": %.6g,\n"
      "  \"workers\": %d,\n"
      "  \"subdomains\": %zu,\n"
      "  \"payload_bytes\": %zu,\n"
      "  \"unique_bytes\": %zu,\n"
      "  \"wire_bytes\": %zu,\n"
      "  \"codec\": \"%s\",\n"
      "  \"encoded_payload_bytes\": %zu,\n"
      "  \"cells\": %zu,\n"
      "  \"nodes\": %d,\n"
      "  \"intra_wire_bytes\": %zu,\n"
      "  \"inter_wire_bytes\": %zu,\n"
      "  \"flat_inter_wire_bytes\": %zu,\n"
      "  \"model_eqn6_bytes\": %.6g,\n"
      "  \"dense_eqn1_bytes\": %.6g,\n"
      "  \"measured_over_model\": %.6g,\n"
      "  \"reduction_vs_dense\": %.6g\n"
      "}\n",
      static_cast<long long>(n), static_cast<long long>(k), r, workers,
      subdomains, payload_bytes, unique_bytes, wire_bytes,
      comm::codec_name(codec), encoded_payload_bytes, cells, nodes,
      intra_wire_bytes, inter_wire_bytes, flat_inter_wire_bytes, model_bytes,
      dense_bytes, measured_over_model(), reduction_vs_dense());
  return buf;
}

}  // namespace lc::obs
