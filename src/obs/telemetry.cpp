// JSONL history reader for the plan-vs-actual telemetry (DESIGN.md §18).
//
// The records are flat single-line JSON objects written by to_json_line();
// the scanner below exploits that shape (no nesting, no escaped strings)
// instead of pulling in a JSON library. A half-written or foreign line
// simply fails to parse and is skipped — the writer's single-fwrite append
// discipline means that can only happen for files produced elsewhere.
#include "obs/telemetry.hpp"

#include <cstring>
#include <fstream>

namespace lc::obs {

namespace {

/// Locate `"key":` in `line` and return the character index of the value.
bool find_value(const std::string& line, const char* key, std::size_t& pos) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  pos = at + needle.size();
  return true;
}

bool scan_double(const std::string& line, const char* key, double& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  char* end = nullptr;
  out = std::strtod(line.c_str() + pos, &end);
  return end != line.c_str() + pos;
}

bool scan_int(const std::string& line, const char* key, std::int64_t& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  char* end = nullptr;
  out = std::strtoll(line.c_str() + pos, &end, 10);
  return end != line.c_str() + pos;
}

bool scan_string(const std::string& line, const char* key, std::string& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  if (pos >= line.size() || line[pos] != '"') return false;
  const std::size_t close = line.find('"', pos + 1);
  if (close == std::string::npos) return false;
  out = line.substr(pos + 1, close - pos - 1);
  return true;
}

bool scan_bool(const std::string& line, const char* key, bool& out) {
  std::size_t pos = 0;
  if (!find_value(line, key, pos)) return false;
  if (line.compare(pos, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (line.compare(pos, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

}  // namespace

bool parse_plan_outcome(const std::string& line, PlanOutcome& o) {
  // A record must open and close an object on the same line (torn-line
  // guard) and carry the version + identity fields.
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  std::int64_t v = 0;
  if (!scan_int(line, "v", v)) return false;
  o.v = static_cast<int>(v);
  if (!scan_string(line, "source", o.source)) return false;
  if (!scan_bool(line, "aborted", o.aborted)) return false;

  std::int64_t tmp = 0;
  const auto geti = [&](const char* key, std::int64_t& field) {
    if (scan_int(line, key, tmp)) field = tmp;
  };
  const auto getn = [&](const char* key, int& field) {
    if (scan_int(line, key, tmp)) field = static_cast<int>(tmp);
  };
  const auto getd = [&](const char* key, double& field) {
    double d = 0.0;
    if (scan_double(line, key, d)) field = d;
  };
  geti("n", o.n);
  getn("ranks", o.ranks);
  getn("nodes", o.nodes);
  geti("k", o.k);
  getn("far_rate", o.far_rate);
  (void)scan_string(line, "schedule", o.schedule);
  (void)scan_string(line, "route", o.route);
  (void)scan_string(line, "wire", o.wire);
  geti("batch", o.batch);
  getd("pred_compute_s", o.pred_compute_s);
  getd("pred_point_passes", o.pred_point_passes);
  getd("pred_rate_pps", o.pred_rate_pps);
  getd("pred_wire_s", o.pred_wire_s);
  getd("pred_intra_s", o.pred_intra_s);
  getd("pred_inter_s", o.pred_inter_s);
  geti("pred_bytes", o.pred_bytes);
  geti("pred_intra_bytes", o.pred_intra_bytes);
  geti("pred_inter_bytes", o.pred_inter_bytes);
  geti("pred_intra_msgs", o.pred_intra_msgs);
  geti("pred_inter_msgs", o.pred_inter_msgs);
  geti("pred_memory_b", o.pred_memory_b);
  getd("pred_rel_error", o.pred_rel_error);
  getd("meas_wall_s", o.meas_wall_s);
  getd("meas_compute_s", o.meas_compute_s);
  getd("meas_wire_s", o.meas_wire_s);
  getd("meas_intra_wire_s", o.meas_intra_wire_s);
  getd("meas_inter_wire_s", o.meas_inter_wire_s);
  geti("meas_bytes", o.meas_bytes);
  geti("meas_intra_bytes", o.meas_intra_bytes);
  geti("meas_inter_bytes", o.meas_inter_bytes);
  geti("meas_intra_msgs", o.meas_intra_msgs);
  geti("meas_inter_msgs", o.meas_inter_msgs);
  geti("meas_memory_peak_b", o.meas_memory_peak_b);
  getd("meas_max_quant_error", o.meas_max_quant_error);
  getd("meas_barrier_wait_s", o.meas_barrier_wait_s);
  getd("meas_recv_wait_s", o.meas_recv_wait_s);
  return true;
}

std::vector<PlanOutcome> read_plan_outcomes(const std::string& path) {
  std::vector<PlanOutcome> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    PlanOutcome o;
    if (parse_plan_outcome(line, o)) out.push_back(std::move(o));
  }
  return out;
}

}  // namespace lc::obs
