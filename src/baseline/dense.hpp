// The "traditional FFT" baseline (paper Fig 1a, Table 3's FFTW column):
// a dense single-node FFT convolution that materialises the full N³
// spectrum and result. Correct and simple — and exactly the memory/
// communication behaviour the low-communication method is designed to
// avoid.
#pragma once

#include <memory>

#include "common/thread_pool.hpp"
#include "device/device.hpp"
#include "green/kernel.hpp"
#include "tensor/field.hpp"

namespace lc::baseline {

/// Dense FFT convolution: forward 3D FFT of the input, pointwise multiply
/// with the kernel spectrum (evaluated on the fly), inverse 3D FFT. When
/// `device` is given, the dense complex working set and a transform-sized
/// workspace are registered against it — the traditional method's memory
/// footprint for Table 1/Table 2 comparisons.
[[nodiscard]] RealField dense_convolve(
    const RealField& input, const green::KernelSpectrum& kernel,
    ThreadPool* pool = &ThreadPool::global(),
    device::DeviceContext* device = nullptr);

/// Dense convolution through the r2c half-spectrum path: same result as
/// dense_convolve for real-spectrum kernels, ~2x less transform work and
/// roughly half the spectrum memory. Preferred in production; the complex
/// path remains as the validation oracle.
[[nodiscard]] RealField dense_convolve_r2c(
    const RealField& input, const green::KernelSpectrum& kernel,
    ThreadPool* pool = &ThreadPool::global(),
    device::DeviceContext* device = nullptr);

/// Analytic device footprint of the dense method: real input + half-
/// spectrum in/out + transform workspace, ≈ 3 × 8 N³ bytes. Used to decide
/// the largest N the "traditional cuFFT" fits on a device (the paper's
/// 1024³-on-32GB limit).
[[nodiscard]] std::size_t dense_convolve_bytes(i64 n);

/// Largest power-of-two N whose dense convolution fits `spec`.
[[nodiscard]] i64 dense_max_grid(const device::DeviceSpec& spec);

}  // namespace lc::baseline
