#include "baseline/dense.hpp"

#include "common/check.hpp"
#include "fft/fft3d.hpp"
#include "fft/real_fft3d.hpp"

namespace lc::baseline {

namespace {

/// RAII device registration (duplicated from core to keep baseline
/// independent of the method library it is compared against).
class Reservation {
 public:
  Reservation(device::DeviceContext* ctx, std::size_t bytes)
      : ctx_(ctx), bytes_(bytes) {
    if (ctx_ != nullptr) ctx_->register_alloc(bytes_);
  }
  ~Reservation() {
    if (ctx_ != nullptr) ctx_->register_free(bytes_);
  }
  Reservation(const Reservation&) = delete;
  Reservation& operator=(const Reservation&) = delete;

 private:
  device::DeviceContext* ctx_;
  std::size_t bytes_;
};

}  // namespace

RealField dense_convolve(const RealField& input,
                         const green::KernelSpectrum& kernel,
                         ThreadPool* pool, device::DeviceContext* device) {
  const Grid3& g = input.grid();
  const std::size_t n3 = g.size();
  // Dense working set: the complex field (in-place transform) plus a
  // transform-sized plan workspace.
  Reservation field_mem(device, n3 * sizeof(fft::cplx));
  Reservation workspace_mem(device, n3 * sizeof(fft::cplx));

  fft::Fft3D plan(g, pool);
  ComplexField spec = fft::forward_spectrum(input, plan);
  auto s = spec.span();
  for_each_point(Box3::of(g), [&](const Index3& p) {
    s[g.index(p)] *= kernel.eval(p, g);
  });
  return fft::inverse_real(std::move(spec), plan);
}

RealField dense_convolve_r2c(const RealField& input,
                             const green::KernelSpectrum& kernel,
                             ThreadPool* pool,
                             device::DeviceContext* device) {
  const Grid3& g = input.grid();
  fft::RealFft3D plan(g, pool);
  const std::size_t spec_elems = plan.spectrum_grid().size();
  // Half spectrum + workspace of the same size.
  Reservation field_mem(device, spec_elems * sizeof(fft::cplx));
  Reservation workspace_mem(device, spec_elems * sizeof(fft::cplx));

  ComplexField spec = plan.forward(input);
  // Multiply on the half bins; bins with jx <= nx/2 carry the whole
  // Hermitian content (the kernel of a real field has a Hermitian
  // spectrum, so the product stays Hermitian).
  for_each_point(Box3::of(plan.spectrum_grid()), [&](const Index3& p) {
    spec(p) *= kernel.eval(p, g);
  });
  return plan.inverse(std::move(spec));
}

std::size_t dense_convolve_bytes(i64 n) {
  const auto n3 = static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
                  static_cast<std::size_t>(n);
  return 3 * sizeof(double) * n3;
}

i64 dense_max_grid(const device::DeviceSpec& spec) {
  i64 best = 0;
  for (i64 n = 2; n <= (i64{1} << 20); n *= 2) {
    if (dense_convolve_bytes(n) <= spec.capacity_bytes) {
      best = n;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace lc::baseline
