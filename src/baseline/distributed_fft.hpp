// Traditional distributed FFT convolution (paper Fig 1a): slab-decomposed
// 3D FFT with an all-to-all transpose between the 2D (xy) and 1D (z)
// stages, pointwise kernel multiply, and the mirrored inverse path — two
// all-to-all rounds per transform direction pair, exactly the communication
// pattern whose cost Eqn 1 models and the low-communication method avoids.
#pragma once

#include <memory>

#include "comm/sim_cluster.hpp"
#include "green/kernel.hpp"
#include "tensor/field.hpp"

namespace lc::baseline {

/// Distributed circular convolution of `input` with `kernel` over the
/// ranks of `cluster`. The grid's z extent must be divisible by the rank
/// count. Byte/message/round counts accumulate in cluster.stats(); the
/// assembled result is returned for verification (assembly itself uses
/// shared memory, not the counted network, mirroring the in-place
/// distributed output of a real run).
[[nodiscard]] RealField distributed_fft_convolve(
    comm::SimCluster& cluster, const RealField& input,
    std::shared_ptr<const green::KernelSpectrum> kernel);

}  // namespace lc::baseline
