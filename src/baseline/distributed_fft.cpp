#include "baseline/distributed_fft.hpp"

#include <mutex>

#include "common/check.hpp"
#include "fft/fft1d.hpp"

namespace lc::baseline {

using fft::cplx;

RealField distributed_fft_convolve(
    comm::SimCluster& cluster, const RealField& input,
    std::shared_ptr<const green::KernelSpectrum> kernel) {
  const Grid3 g = input.grid();
  const int workers = cluster.size();
  LC_CHECK_ARG(g.nx == g.ny && g.ny == g.nz, "cubic grid required");
  LC_CHECK_ARG(g.nz % workers == 0, "rank count must divide the grid side");
  LC_CHECK_ARG(kernel != nullptr, "null kernel");

  const i64 n = g.nx;
  const auto un = static_cast<std::size_t>(n);
  const i64 zs = n / workers;  // z planes per rank (slab decomposition)
  const i64 ys = n / workers;  // y rows per rank (pencil decomposition)

  RealField assembled(g, 0.0);
  std::mutex assemble_mutex;

  cluster.run([&](comm::Rank& rank) {
    const int r = rank.id();
    const i64 z0 = static_cast<i64>(r) * zs;
    const i64 y0 = static_cast<i64>(r) * ys;
    fft::Fft1D plan(un);
    fft::FftWorkspace ws;

    // --- Forward 2D (xy) on my z-slab -----------------------------------
    // Slab layout: (x, y, z_local), x fastest.
    std::vector<cplx> slab(un * un * static_cast<std::size_t>(zs));
    for (i64 zl = 0; zl < zs; ++zl) {
      for (i64 y = 0; y < n; ++y) {
        const double* src = &input(0, y, z0 + zl);
        cplx* dst = slab.data() +
                    (static_cast<std::size_t>(zl) * un +
                     static_cast<std::size_t>(y)) *
                        un;
        for (i64 x = 0; x < n; ++x) dst[x] = cplx{src[x], 0.0};
      }
    }
    for (i64 zl = 0; zl < zs; ++zl) {
      cplx* plane = slab.data() + static_cast<std::size_t>(zl) * un * un;
      plan.forward_strided(plane, 1, un, un, ws);   // x rows
      plan.forward_strided(plane, un, 1, un, ws);   // y pencils
    }

    // --- All-to-all transpose #1: z-slabs → y-pencil slabs --------------
    auto pack = [&](const std::vector<cplx>& data, i64 zplanes) {
      // Message to rank s: my z planes, s's y range, all x.
      std::vector<std::vector<double>> out(static_cast<std::size_t>(workers));
      for (int s = 0; s < workers; ++s) {
        auto& buf = out[static_cast<std::size_t>(s)];
        buf.reserve(2 * un * static_cast<std::size_t>(ys) *
                    static_cast<std::size_t>(zplanes));
        const i64 sy0 = static_cast<i64>(s) * ys;
        for (i64 zl = 0; zl < zplanes; ++zl) {
          for (i64 yl = 0; yl < ys; ++yl) {
            const cplx* row = data.data() +
                              (static_cast<std::size_t>(zl) * un +
                               static_cast<std::size_t>(sy0 + yl)) *
                                  un;
            for (i64 x = 0; x < n; ++x) {
              buf.push_back(row[x].real());
              buf.push_back(row[x].imag());
            }
          }
        }
      }
      return out;
    };

    auto incoming = rank.all_to_all(pack(slab, zs));

    // Pencil slab layout: (x, y_local, z), x fastest, z slowest.
    std::vector<cplx> pencil(un * static_cast<std::size_t>(ys) * un);
    auto unpack_pencil = [&](const std::vector<std::vector<double>>& in) {
      for (int s = 0; s < workers; ++s) {
        const auto& buf = in[static_cast<std::size_t>(s)];
        std::size_t idx = 0;
        const i64 sz0 = static_cast<i64>(s) * zs;
        for (i64 zl = 0; zl < zs; ++zl) {
          for (i64 yl = 0; yl < ys; ++yl) {
            cplx* row = pencil.data() +
                        (static_cast<std::size_t>(sz0 + zl) *
                             static_cast<std::size_t>(ys) +
                         static_cast<std::size_t>(yl)) *
                            un;
            for (i64 x = 0; x < n; ++x) {
              row[x] = cplx{buf[idx], buf[idx + 1]};
              idx += 2;
            }
          }
        }
      }
    };
    unpack_pencil(incoming);

    // --- z transform, kernel multiply, inverse z -------------------------
    const std::size_t zstride = un * static_cast<std::size_t>(ys);
    for (i64 yl = 0; yl < ys; ++yl) {
      cplx* base = pencil.data() + static_cast<std::size_t>(yl) * un;
      plan.forward_strided(base, zstride, 1, un, ws);
    }
    for (i64 z = 0; z < n; ++z) {
      for (i64 yl = 0; yl < ys; ++yl) {
        cplx* row = pencil.data() +
                    (static_cast<std::size_t>(z) * static_cast<std::size_t>(ys) +
                     static_cast<std::size_t>(yl)) *
                        un;
        for (i64 x = 0; x < n; ++x) {
          row[x] *= kernel->eval({x, y0 + yl, z}, g);
        }
      }
    }
    for (i64 yl = 0; yl < ys; ++yl) {
      cplx* base = pencil.data() + static_cast<std::size_t>(yl) * un;
      plan.inverse_strided(base, zstride, 1, un, ws);
    }

    // --- All-to-all transpose #2: back to z-slabs ------------------------
    // Message to rank s: s's z planes, my y range, all x.
    std::vector<std::vector<double>> out2(static_cast<std::size_t>(workers));
    for (int s = 0; s < workers; ++s) {
      auto& buf = out2[static_cast<std::size_t>(s)];
      buf.reserve(2 * un * static_cast<std::size_t>(ys) *
                  static_cast<std::size_t>(zs));
      const i64 sz0 = static_cast<i64>(s) * zs;
      for (i64 zl = 0; zl < zs; ++zl) {
        for (i64 yl = 0; yl < ys; ++yl) {
          const cplx* row = pencil.data() +
                            (static_cast<std::size_t>(sz0 + zl) *
                                 static_cast<std::size_t>(ys) +
                             static_cast<std::size_t>(yl)) *
                                un;
          for (i64 x = 0; x < n; ++x) {
            buf.push_back(row[x].real());
            buf.push_back(row[x].imag());
          }
        }
      }
    }
    auto incoming2 = rank.all_to_all(out2);
    for (int s = 0; s < workers; ++s) {
      const auto& buf = incoming2[static_cast<std::size_t>(s)];
      std::size_t idx = 0;
      const i64 sy0 = static_cast<i64>(s) * ys;
      for (i64 zl = 0; zl < zs; ++zl) {
        for (i64 yl = 0; yl < ys; ++yl) {
          cplx* row = slab.data() +
                      (static_cast<std::size_t>(zl) * un +
                       static_cast<std::size_t>(sy0 + yl)) *
                          un;
          for (i64 x = 0; x < n; ++x) {
            row[x] = cplx{buf[idx], buf[idx + 1]};
            idx += 2;
          }
        }
      }
    }

    // --- Inverse 2D (xy) and write my planes into the shared result ------
    for (i64 zl = 0; zl < zs; ++zl) {
      cplx* plane = slab.data() + static_cast<std::size_t>(zl) * un * un;
      plan.inverse_strided(plane, un, 1, un, ws);  // y
      plan.inverse_strided(plane, 1, un, un, ws);  // x
    }
    {
      std::lock_guard lock(assemble_mutex);
      for (i64 zl = 0; zl < zs; ++zl) {
        for (i64 y = 0; y < n; ++y) {
          const cplx* row = slab.data() +
                            (static_cast<std::size_t>(zl) * un +
                             static_cast<std::size_t>(y)) *
                                un;
          double* dst = &assembled(0, y, z0 + zl);
          for (i64 x = 0; x < n; ++x) dst[x] = row[x].real();
        }
      }
    }
  });
  return assembled;
}

}  // namespace lc::baseline
