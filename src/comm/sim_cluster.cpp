#include "comm/sim_cluster.hpp"

#include <chrono>
#include <exception>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lc::comm {

namespace {

// Process-wide comm metrics, aggregated across clusters (the obs registry's
// view; per-cluster and per-rank exactness lives in CommStats/RankCommStats).
struct CommMetrics {
  obs::Counter& bytes_sent =
      obs::Registry::global().counter("comm.bytes_sent");
  obs::Counter& messages = obs::Registry::global().counter("comm.messages");
  obs::Histogram& barrier_wait = obs::Registry::global().histogram(
      "comm.barrier_wait_seconds");
  obs::Histogram& recv_wait = obs::Registry::global().histogram(
      "comm.recv_wait_seconds");

  static CommMetrics& get() {
    static CommMetrics m;
    return m;
  }
};

// Process-wide flow-id mint: ids must be unique across every SimCluster a
// process runs (the demo stitches two clusters into one trace), so the
// counter is global, never per-cluster. 0 is reserved for "untraced".
std::uint64_t next_flow_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

const char* flow_name(bool inter_node) {
  return inter_node ? "comm.msg.inter" : "comm.msg.intra";
}

}  // namespace

int Rank::size() const noexcept { return cluster_->size(); }

const Topology& Rank::topology() const noexcept {
  return cluster_->topology();
}

void Rank::send(int dst, std::span<const double> data) {
  LC_CHECK_ARG(dst >= 0 && dst < cluster_->size(), "bad destination rank");
  const std::size_t bytes = data.size() * sizeof(double);
  const bool inter_node = !cluster_->topo_.same_node(id_, dst);
  // Mint the flow context BEFORE enqueueing so the matching 'f' endpoint
  // (recorded by the receiver) can never precede the 's' in the trace.
  obs::Tracer& tracer = obs::Tracer::global();
  std::uint64_t ctx = 0;
  if (tracer.enabled()) {
    ctx = next_flow_id();
    tracer.record_flow(flow_name(inter_node), ctx, bytes, /*finish=*/false);
  }
  auto& ch = cluster_->channel(id_, dst);
  {
    std::lock_guard lock(ch.mutex);
    ch.queue.push_back(SimCluster::Message{
        std::vector<double>(data.begin(), data.end()), ctx});
  }
  ch.available.notify_one();
  cluster_->stats_.bytes_sent += bytes;
  cluster_->stats_.messages += 1;
  if (inter_node) {
    cluster_->stats_.inter_bytes_sent += bytes;
    cluster_->stats_.inter_messages += 1;
  } else {
    cluster_->stats_.intra_bytes_sent += bytes;
    cluster_->stats_.intra_messages += 1;
  }
  const auto modeled = static_cast<std::int64_t>(
      cluster_->links_.level(inter_node).message_time(bytes) * 1e9);
  cluster_->stats_.modeled_nanos += modeled;
  if (inter_node) {
    cluster_->stats_.inter_modeled_nanos += modeled;
  } else {
    cluster_->stats_.intra_modeled_nanos += modeled;
  }
  auto& mine = cluster_->per_rank_[static_cast<std::size_t>(id_)];
  mine.bytes_sent += bytes;
  mine.messages_sent += 1;
  if (inter_node) {
    mine.inter_bytes_sent += bytes;
  } else {
    mine.intra_bytes_sent += bytes;
  }
  CommMetrics& metrics = CommMetrics::get();
  metrics.bytes_sent.add(bytes);
  metrics.messages.add();
}

std::vector<double> Rank::recv(int src) {
  LC_CHECK_ARG(src >= 0 && src < cluster_->size(), "bad source rank");
  auto& ch = cluster_->channel(src, id_);
  SimCluster::Message msg;
  // One clock sample pair feeds BOTH the recv-wait counter and the
  // "comm.recv_wait" trace span, so the trace's per-rank wait attribution
  // sums to RankCommStats::recv_wait_ns exactly.
  obs::Tracer& tracer = obs::Tracer::global();
  const std::int64_t wait_start = tracer.now_ns();
  {
    std::unique_lock lock(ch.mutex);
    ch.available.wait(lock, [&] {
      return !ch.queue.empty() || cluster_->aborted_.load();
    });
    // Messages already delivered are still consumed; only an empty queue
    // with a dead sender is hopeless.
    if (ch.queue.empty()) cluster_->throw_if_aborted();
    msg = std::move(ch.queue.front());
    ch.queue.pop_front();
  }
  const std::int64_t waited_ns = tracer.now_ns() - wait_start;
  const std::size_t bytes = msg.data.size() * sizeof(double);
  auto& mine = cluster_->per_rank_[static_cast<std::size_t>(id_)];
  mine.recv_wait_ns += waited_ns;
  if (tracer.enabled()) {
    tracer.record("comm.recv_wait", wait_start, waited_ns);
    if (msg.trace_ctx != 0) {
      const bool inter_node = !cluster_->topo_.same_node(src, id_);
      tracer.record_flow(flow_name(inter_node), msg.trace_ctx, bytes,
                         /*finish=*/true);
    }
  }
  CommMetrics::get().recv_wait.record(static_cast<double>(waited_ns) * 1e-9);
  cluster_->stats_.bytes_received += bytes;
  cluster_->stats_.messages_received += 1;
  mine.bytes_received += bytes;
  mine.messages_received += 1;
  return std::move(msg.data);
}

std::vector<std::vector<double>> Rank::all_to_all(
    const std::vector<std::vector<double>>& outgoing) {
  const int p = size();
  LC_CHECK_ARG(static_cast<int>(outgoing.size()) == p,
               "all_to_all needs one buffer per rank");
  // Self-delivery does not touch the network; remote buffers do.
  for (int d = 0; d < p; ++d) {
    if (d != id_) send(d, outgoing[static_cast<std::size_t>(d)]);
  }
  std::vector<std::vector<double>> incoming(static_cast<std::size_t>(p));
  incoming[static_cast<std::size_t>(id_)] =
      outgoing[static_cast<std::size_t>(id_)];
  for (int s = 0; s < p; ++s) {
    if (s != id_) incoming[static_cast<std::size_t>(s)] = recv(s);
  }
  if (id_ == 0) cluster_->stats_.collective_rounds += 1;
  barrier();
  return incoming;
}

std::vector<std::vector<double>> Rank::all_gather(std::span<const double> mine) {
  // Forwarding ring over rank ids: step s receives the buffer that
  // originated s hops upstream and passes the previous one on. Each rank
  // sends p−1 real messages to its successor only, so on a grouped
  // topology the expensive inter-node link is crossed once per node per
  // step (at the node boundary) instead of by every (src, dst) pair — and
  // the byte/message/modelled accounting below is derived from the
  // messages the ring actually moves, not borrowed from all_to_all.
  const int p = size();
  std::vector<std::vector<double>> incoming(static_cast<std::size_t>(p));
  incoming[static_cast<std::size_t>(id_)].assign(mine.begin(), mine.end());
  const int next = (id_ + 1) % p;
  const int prev = (id_ + p - 1) % p;
  std::vector<double> cur = incoming[static_cast<std::size_t>(id_)];
  for (int step = 1; step < p; ++step) {
    send(next, cur);
    cur = recv(prev);
    incoming[static_cast<std::size_t>((id_ + p - step) % p)] = cur;
  }
  if (id_ == 0) {
    cluster_->stats_.collective_rounds += 1;
    cluster_->stats_.allgather_rounds += 1;
  }
  barrier();
  return incoming;
}

double Rank::all_reduce_sum(double value) {
  auto& c = *cluster_;
  // Deterministic rank-ordered reduction: publish into my slot, wait for
  // everyone, then sum the slots in rank order. The sum every rank computes
  // is the same fixed-order sequence of additions no matter which thread
  // arrived first, so results are bit-identical run to run (the old
  // arrival-order accumulator was not). The barriers carry the
  // happens-before edges for the plain slot writes; the trailing barrier
  // keeps a fast rank's next reduction from overwriting a slot a slow rank
  // is still reading.
  c.reduce_slots_[static_cast<std::size_t>(id_)] = value;
  barrier();
  double result = 0.0;
  for (int r = 0; r < c.size(); ++r) {
    result += c.reduce_slots_[static_cast<std::size_t>(r)];
  }
  if (id_ == 0) {
    c.stats_.collective_rounds += 1;
    // A tree reduction moves one double per rank (up and down).
    c.stats_.bytes_sent += 2 * sizeof(double) * static_cast<std::size_t>(size());
    c.stats_.messages += 2 * static_cast<std::size_t>(size());
    c.stats_.bytes_received +=
        2 * sizeof(double) * static_cast<std::size_t>(size());
    c.stats_.messages_received += 2 * static_cast<std::size_t>(size());
  }
  // Attribute each rank's share of the synthetic tree traffic to itself:
  // non-leaders reduce to their node leader (intra); leaders combine across
  // nodes (inter). On a flat topology every rank is a leader, so the whole
  // synthetic volume is inter-node, as before the topology existed.
  const bool crosses_nodes = c.topo_.is_leader(id_);
  auto& mine = c.per_rank_[static_cast<std::size_t>(id_)];
  mine.bytes_sent += 2 * sizeof(double);
  mine.bytes_received += 2 * sizeof(double);
  mine.messages_sent += 2;
  mine.messages_received += 2;
  if (crosses_nodes) {
    mine.inter_bytes_sent += 2 * sizeof(double);
    c.stats_.inter_bytes_sent += 2 * sizeof(double);
    c.stats_.inter_messages += 2;
  } else {
    mine.intra_bytes_sent += 2 * sizeof(double);
    c.stats_.intra_bytes_sent += 2 * sizeof(double);
    c.stats_.intra_messages += 2;
  }
  barrier();
  return result;
}

void Rank::barrier() { cluster_->barrier_wait(id_); }

void Rank::collective_round() { cluster_->stats_.collective_rounds += 1; }

// Topology::flat rejects ranks < 1 for us.
SimCluster::SimCluster(int ranks, AlphaBetaModel link)
    : SimCluster(Topology::flat(ranks), HierarchicalLinkModel::uniform(link)) {}

SimCluster::SimCluster(Topology topo, HierarchicalLinkModel links)
    : ranks_(topo.ranks()),
      topo_(std::move(topo)),
      links_(links),
      per_rank_(static_cast<std::size_t>(ranks_)),
      reduce_slots_(static_cast<std::size_t>(ranks_), 0.0) {
  channels_ = std::vector<Channel>(static_cast<std::size_t>(ranks_) *
                                   static_cast<std::size_t>(ranks_));
}

RankCommStats SimCluster::rank_stats(int rank) const {
  LC_CHECK_ARG(rank >= 0 && rank < ranks_, "bad rank");
  const RankCounters& c = per_rank_[static_cast<std::size_t>(rank)];
  RankCommStats out;
  out.bytes_sent = c.bytes_sent.load();
  out.bytes_received = c.bytes_received.load();
  out.messages_sent = c.messages_sent.load();
  out.messages_received = c.messages_received.load();
  out.intra_bytes_sent = c.intra_bytes_sent.load();
  out.inter_bytes_sent = c.inter_bytes_sent.load();
  out.barrier_wait_ns = c.barrier_wait_ns.load();
  out.recv_wait_ns = c.recv_wait_ns.load();
  out.barrier_wait_seconds = static_cast<double>(out.barrier_wait_ns) * 1e-9;
  out.recv_wait_seconds = static_cast<double>(out.recv_wait_ns) * 1e-9;
  return out;
}

void SimCluster::reset_stats() {
  stats_.reset();
  for (RankCounters& c : per_rank_) {
    c.bytes_sent = 0;
    c.bytes_received = 0;
    c.messages_sent = 0;
    c.messages_received = 0;
    c.intra_bytes_sent = 0;
    c.inter_bytes_sent = 0;
    c.barrier_wait_ns = 0;
    c.recv_wait_ns = 0;
  }
}

void SimCluster::barrier_wait(int rank) {
  // Single clock sample pair for the counter AND the "comm.barrier" trace
  // span (see recv): critical-path attribution must sum exactly.
  obs::Tracer& tracer = obs::Tracer::global();
  const std::int64_t wait_start = tracer.now_ns();
  std::unique_lock lock(barrier_mutex_);
  throw_if_aborted();
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_waiting_ == ranks_) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] {
      return barrier_generation_ != gen || aborted_.load();
    });
  }
  lock.unlock();
  const std::int64_t waited_ns = tracer.now_ns() - wait_start;
  per_rank_[static_cast<std::size_t>(rank)].barrier_wait_ns += waited_ns;
  if (tracer.enabled()) tracer.record("comm.barrier", wait_start, waited_ns);
  CommMetrics::get().barrier_wait.record(static_cast<double>(waited_ns) *
                                         1e-9);
  // A generation bump from abort_run also lands here; distinguish by flag
  // so ranks stop at THIS barrier instead of sailing into the next one.
  throw_if_aborted();
}

void SimCluster::abort_run() {
  // Raise the flag first so every wait predicate that runs after the
  // notifications below observes it; then wake all sleepers. Each notify is
  // issued under that waiter's own mutex, so no wakeup can be lost.
  aborted_.store(true);
  {
    std::lock_guard lock(barrier_mutex_);
    barrier_waiting_ = 0;
    ++barrier_generation_;
  }
  barrier_cv_.notify_all();
  for (auto& ch : channels_) {
    std::lock_guard lock(ch.mutex);
    ch.available.notify_all();
  }
}

void SimCluster::run(const std::function<void(Rank&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks_));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < ranks_; ++r) {
    threads.emplace_back([&, r] {
      // Label the track so stitched multi-rank traces read "rank N", and
      // so tools/critical_path.py can group the per-run thread ids of one
      // rank. Only when tracing — the label allocates this thread's buffer.
      if (obs::Tracer::global().enabled()) {
        obs::Tracer::global().set_thread_label("rank " + std::to_string(r));
      }
      Rank rank(*this, r);
      try {
        body(rank);
      } catch (...) {
        // Record the error BEFORE raising the abort flag: cascading
        // RankAborted unwinds on peer ranks are ordered after the flag, so
        // the original exception always wins the first_error slot.
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort_run();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Reset synchronisation state and drain channel leftovers so the next
  // run starts clean after an error.
  if (first_error) {
    aborted_.store(false);
    {
      std::lock_guard lock(barrier_mutex_);
      barrier_waiting_ = 0;
    }
    // (Reduction slots need no reset: every reduction rewrites all slots
    // before any rank reads them.)
    for (auto& ch : channels_) {
      std::lock_guard lock(ch.mutex);
      ch.queue.clear();
    }
    std::rethrow_exception(first_error);
  }
}

}  // namespace lc::comm
