#include "comm/topology.hpp"

namespace lc::comm {

Topology Topology::flat(int ranks) { return grouped(ranks, 1); }

Topology Topology::grouped(int ranks, int ranks_per_node) {
  LC_CHECK_ARG(ranks >= 1, "topology needs at least one rank");
  LC_CHECK_ARG(ranks_per_node >= 1 && ranks_per_node <= ranks,
               "node size must be in [1, ranks]");
  Topology t;
  t.node_of_.resize(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    const int node = r / ranks_per_node;
    t.node_of_[static_cast<std::size_t>(r)] = node;
    if (static_cast<std::size_t>(node) == t.members_.size()) {
      t.members_.emplace_back();
    }
    t.members_.back().push_back(r);
  }
  return t;
}

}  // namespace lc::comm
