// Wire codec for the octree exchange payloads (DESIGN.md §17).
//
// The exchange ships far-field samples the octree already downsampled
// aggressively, so the per-element representation is the last untapped
// 2–4× of wire volume. Five formats, selected per run via LC_WIRE (or per
// plan by the planner, core::LowCommParams::wire):
//
//   off   fp64 passthrough — bit-exact, the pre-codec wire format
//   fp32  4 B/sample, round-to-nearest narrowing
//   fp16  2 B/sample IEEE binary16, clamped to ±65504 before encoding
//   bf16  2 B/sample bfloat16 (float range, 8-bit mantissa)
//   q16   2 B/sample block-scaled int16: one fp64 max-abs scale per octree
//         cell (8 B header), samples quantised to scale·[-32767, 32767].
//         Error-bounded: |decoded − x| ≤ cell_max_abs / 65534 per sample.
//
// Framing stays header-free: both sides derive every bundle's size from the
// deterministic octrees (encoded_cell_bytes summed over the packed cells,
// rounded up to whole wire doubles), so no metadata crosses the wire and
// the static traffic mirror (core::lowcomm_exchange_traffic) stays
// byte-exact against executed CommStats under every codec.
//
// The wire unit of SimCluster is std::vector<double>; encoded streams are
// byte-packed into ceil(bytes / 8) doubles with deterministic zero padding,
// which makes the `off` codec a plain memcpy of the samples — buffers are
// bit-identical to the pre-codec format by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace lc::comm {

/// Payload representation of the sample exchange.
enum class WireCodec : std::uint8_t { kOff, kFp32, kFp16, kBf16, kQ16 };

/// All codecs, in LC_WIRE spelling order (sweep helper for benches/tests).
inline constexpr WireCodec kAllWireCodecs[] = {
    WireCodec::kOff, WireCodec::kFp32, WireCodec::kFp16, WireCodec::kBf16,
    WireCodec::kQ16};

/// Canonical spelling ("off", "fp32", "fp16", "bf16", "q16").
[[nodiscard]] const char* codec_name(WireCodec codec) noexcept;

/// Parse a codec spelling; throws InvalidArgument naming the bad value.
[[nodiscard]] WireCodec parse_wire_codec(std::string_view value);

/// LC_WIRE=off|fp32|fp16|bf16|q16 (unset → off; anything else throws).
/// Read per call — LowCommParams defaults its codec from this at
/// construction, so tests can toggle the environment between engines.
[[nodiscard]] WireCodec wire_codec_from_env();

/// Encoded bytes per sample (8, 4, 2, 2, 2).
[[nodiscard]] constexpr std::size_t codec_sample_bytes(
    WireCodec codec) noexcept {
  switch (codec) {
    case WireCodec::kOff:
      return 8;
    case WireCodec::kFp32:
      return 4;
    case WireCodec::kFp16:
    case WireCodec::kBf16:
    case WireCodec::kQ16:
      return 2;
  }
  return 8;
}

/// Per-cell header bytes (the q16 block scale; 0 for the direct formats).
[[nodiscard]] constexpr std::size_t codec_cell_header_bytes(
    WireCodec codec) noexcept {
  return codec == WireCodec::kQ16 ? sizeof(double) : 0;
}

/// Encoded bytes of one octree cell holding `samples` values.
[[nodiscard]] constexpr std::size_t encoded_cell_bytes(
    WireCodec codec, std::size_t samples) noexcept {
  return codec_cell_header_bytes(codec) + samples * codec_sample_bytes(codec);
}

/// Wire doubles occupied by an encoded bundle of `bytes` bytes (SimCluster
/// ships vector<double>; bundles round up to whole doubles, zero-padded).
[[nodiscard]] constexpr std::size_t wire_doubles(std::size_t bytes) noexcept {
  return (bytes + sizeof(double) - 1) / sizeof(double);
}

/// Calibrated relative-error contribution of one codec round trip, the
/// planner's accuracy-screen term (added to the interpolation error model
/// and checked against PlanRequest::max_rel_error). Zero for exact fp64;
/// the lossy values carry a safety margin over the per-sample mantissa
/// bound, matching the measured end-to-end L2 table in README.md.
[[nodiscard]] constexpr double codec_rel_error(WireCodec codec) noexcept {
  switch (codec) {
    case WireCodec::kOff:
      return 0.0;
    case WireCodec::kFp32:
      return 1e-7;  // 2^-24 mantissa rounding
    case WireCodec::kFp16:
      return 2e-3;  // 2^-11 mantissa; range-clamped at ±65504
    case WireCodec::kBf16:
      return 5e-3;  // 2^-8 mantissa
    case WireCodec::kQ16:
      return 1e-3;  // ≤ cell max-abs / 65534 per sample
  }
  return 0.0;
}

/// Streaming encoder: cells in, byte-packed wire doubles out. One encoder
/// per destination bundle; cells append in the deterministic mask order the
/// decoder replays. finish() zero-pads to the wire-double boundary and
/// returns the encoded byte count (pre-padding).
class WireEncoder {
 public:
  /// Appends into `out` (which must start empty).
  WireEncoder(WireCodec codec, std::vector<double>& out);

  /// Encode one cell's samples (q16 derives and stores the block scale).
  void add_cell(std::span<const double> samples);

  /// Pad to a whole number of wire doubles; returns encoded bytes.
  std::size_t finish();

  [[nodiscard]] std::size_t raw_bytes() const noexcept { return raw_bytes_; }
  [[nodiscard]] std::size_t encoded_bytes() const noexcept { return bytes_; }
  /// Largest |decoded − original| over every sample encoded so far (0 for
  /// the off codec) — feeds the exchange.max_quant_error gauge.
  [[nodiscard]] double max_abs_error() const noexcept { return max_error_; }

 private:
  void append(const void* src, std::size_t bytes);

  WireCodec codec_;
  std::vector<double>& out_;
  std::size_t bytes_ = 0;
  std::size_t raw_bytes_ = 0;
  double max_error_ = 0.0;
  std::vector<std::uint16_t> scratch16_;
  std::vector<float> scratch32_;
  std::vector<std::int16_t> scratchq_;
  std::vector<double> scratchd_;
};

/// Streaming decoder over one received bundle. Cells must be read in the
/// exact order (and with the exact sample counts) they were encoded; both
/// sides derive that order from the deterministic octrees. finish() checks
/// the bundle was consumed exactly (padding short of one wire double).
class WireDecoder {
 public:
  WireDecoder(WireCodec codec, std::span<const double> wire);

  /// Decode the next cell into `out` (out.size() = the cell's sample count).
  void read_cell(std::span<double> out);

  /// Throws InternalError unless the bundle is fully consumed.
  void finish() const;

  [[nodiscard]] std::size_t consumed_bytes() const noexcept { return bytes_; }

 private:
  WireCodec codec_;
  const unsigned char* base_;
  std::size_t size_bytes_;
  std::size_t bytes_ = 0;
  // Encoded cells are memcpy-staged here before widening: the wire buffer's
  // underlying objects are doubles, so reading them through float/int16
  // views would violate aliasing rules.
  std::vector<std::uint16_t> scratch16_;
  std::vector<float> scratch32_;
  std::vector<std::int16_t> scratchq_;
};

}  // namespace lc::comm
