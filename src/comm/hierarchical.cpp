#include "comm/hierarchical.hpp"

#include <cstddef>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lc::comm {

namespace {

// Wire bytes by level for the composed exchanges, feeding the PR-5
// comm-volume accounting (tools/check_obs_outputs.py asserts these fire).
struct ExchangeLevelMetrics {
  obs::Counter& inter_bytes =
      obs::Registry::global().counter("exchange.inter_node_bytes");
  obs::Counter& intra_bytes =
      obs::Registry::global().counter("exchange.intra_node_bytes");

  static ExchangeLevelMetrics& get() {
    static ExchangeLevelMetrics m;
    return m;
  }
};

void count_send(const Topology& topo, int src, int dst, std::size_t doubles) {
  ExchangeLevelMetrics& m = ExchangeLevelMetrics::get();
  (topo.same_node(src, dst) ? m.intra_bytes : m.inter_bytes)
      .add(doubles * sizeof(double));
}

}  // namespace

std::vector<std::vector<double>> node_multicast_exchange(
    Rank& rank, const std::vector<std::vector<double>>& outgoing,
    const NodeBundleSizes& bundle_doubles) {
  LC_TRACE("comm.hier_exchange");
  const Topology& topo = rank.topology();
  const int me = rank.id();
  const int my_node = topo.node_of(me);
  const auto members = topo.members(my_node);
  const int leader = members.front();
  const int nodes = topo.nodes();
  LC_CHECK_ARG(static_cast<int>(outgoing.size()) == nodes,
               "node_multicast_exchange needs one bundle per node");
  for (int d = 0; d < nodes; ++d) {
    LC_CHECK_ARG(outgoing[static_cast<std::size_t>(d)].size() ==
                     bundle_doubles(me, d),
                 "outgoing bundle size disagrees with the size oracle");
  }

  std::vector<std::vector<double>> incoming(
      static_cast<std::size_t>(rank.size()));
  incoming[static_cast<std::size_t>(me)] =
      outgoing[static_cast<std::size_t>(my_node)];

  // Split phase (intra): own-node bundles travel directly between
  // node-mates; remote-bound bundles funnel through the leader.
  {
    LC_TRACE("comm.hier_split");
    for (const int q : members) {
      if (q == me) continue;
      rank.send(q, outgoing[static_cast<std::size_t>(my_node)]);
      count_send(topo, me, q,
                 outgoing[static_cast<std::size_t>(my_node)].size());
    }
    if (me != leader) {
      std::vector<double> remote;
      for (int d = 0; d < nodes; ++d) {
        if (d == my_node) continue;
        const auto& b = outgoing[static_cast<std::size_t>(d)];
        remote.insert(remote.end(), b.begin(), b.end());
      }
      rank.send(leader, remote);
      count_send(topo, me, leader, remote.size());
    }
  }

  if (me == leader) {
    // Gather the node's remote payloads (second message on each local
    // channel; the first is the own-node multicast).
    std::vector<std::vector<double>> gathered(
        static_cast<std::size_t>(rank.size()));
    for (const int q : members) {
      if (q == me) continue;
      incoming[static_cast<std::size_t>(q)] = rank.recv(q);
      gathered[static_cast<std::size_t>(q)] = rank.recv(q);
    }

    // Inter phase: ONE combined message per ordered node pair, holding
    // every local rank's bundle for that node in rank order.
    {
      LC_TRACE("comm.hier_inter");
      for (int d = 0; d < nodes; ++d) {
        if (d == my_node) continue;
        std::vector<double> combined;
        for (const int q : members) {
          if (q == me) {
            const auto& b = outgoing[static_cast<std::size_t>(d)];
            combined.insert(combined.end(), b.begin(), b.end());
            continue;
          }
          // q's gather message holds its bundles for nodes != my_node in
          // ascending node order; locate d's slice by the oracle.
          std::size_t offset = 0;
          for (int d2 = 0; d2 < d; ++d2) {
            if (d2 != my_node) offset += bundle_doubles(q, d2);
          }
          const std::size_t len = bundle_doubles(q, d);
          const auto& g = gathered[static_cast<std::size_t>(q)];
          LC_CHECK(offset + len <= g.size(), "gather framing mismatch");
          combined.insert(combined.end(),
                          g.begin() + static_cast<std::ptrdiff_t>(offset),
                          g.begin() + static_cast<std::ptrdiff_t>(offset + len));
        }
        rank.send(topo.leader_of(d), combined);
        count_send(topo, me, topo.leader_of(d), combined.size());
      }
    }

    // Intra phase: forward each remote node's bundle to the local peers and
    // split it into per-source-rank views.
    {
      LC_TRACE("comm.hier_intra");
      for (int s = 0; s < nodes; ++s) {
        if (s == my_node) continue;
        const std::vector<double> bundle = rank.recv(topo.leader_of(s));
        for (const int q : members) {
          if (q == me) continue;
          rank.send(q, bundle);
          count_send(topo, me, q, bundle.size());
        }
        std::size_t offset = 0;
        for (const int src : topo.members(s)) {
          const std::size_t len = bundle_doubles(src, my_node);
          LC_CHECK(offset + len <= bundle.size(), "inter framing mismatch");
          incoming[static_cast<std::size_t>(src)].assign(
              bundle.begin() + static_cast<std::ptrdiff_t>(offset),
              bundle.begin() + static_cast<std::ptrdiff_t>(offset + len));
          offset += len;
        }
        LC_CHECK(offset == bundle.size(), "inter framing mismatch");
      }
    }
  } else {
    // Own-node multicasts (each local channel's first message)...
    for (const int q : members) {
      if (q == me) continue;
      incoming[static_cast<std::size_t>(q)] = rank.recv(q);
    }
    // ...then the forwarded remote bundles, in ascending source-node order
    // (the order the leader sends them).
    LC_TRACE("comm.hier_intra");
    for (int s = 0; s < nodes; ++s) {
      if (s == my_node) continue;
      const std::vector<double> bundle = rank.recv(leader);
      std::size_t offset = 0;
      for (const int src : topo.members(s)) {
        const std::size_t len = bundle_doubles(src, my_node);
        LC_CHECK(offset + len <= bundle.size(), "forward framing mismatch");
        incoming[static_cast<std::size_t>(src)].assign(
            bundle.begin() + static_cast<std::ptrdiff_t>(offset),
            bundle.begin() + static_cast<std::ptrdiff_t>(offset + len));
        offset += len;
      }
      LC_CHECK(offset == bundle.size(), "forward framing mismatch");
    }
  }

  if (me == 0) rank.collective_round();
  rank.barrier();
  return incoming;
}

std::vector<std::vector<double>> hierarchical_all_to_all(
    Rank& rank, const std::vector<std::vector<double>>& outgoing,
    const PairSizes& pair_doubles) {
  const Topology& topo = rank.topology();
  const int me = rank.id();
  const int p = rank.size();
  const int nodes = topo.nodes();
  LC_CHECK_ARG(static_cast<int>(outgoing.size()) == p,
               "hierarchical_all_to_all needs one buffer per rank");
  for (int dst = 0; dst < p; ++dst) {
    LC_CHECK_ARG(outgoing[static_cast<std::size_t>(dst)].size() ==
                     pair_doubles(me, dst),
                 "outgoing buffer size disagrees with the size oracle");
  }

  // Node bundle = the per-rank buffers for that node's members, rank order.
  std::vector<std::vector<double>> node_out(static_cast<std::size_t>(nodes));
  for (int d = 0; d < nodes; ++d) {
    auto& bundle = node_out[static_cast<std::size_t>(d)];
    for (const int dst : topo.members(d)) {
      const auto& b = outgoing[static_cast<std::size_t>(dst)];
      bundle.insert(bundle.end(), b.begin(), b.end());
    }
  }
  const auto node_sizes = [&](int src, int dst_node) {
    std::size_t doubles = 0;
    for (const int dst : topo.members(dst_node)) {
      doubles += pair_doubles(src, dst);
    }
    return doubles;
  };
  const auto bundles = node_multicast_exchange(rank, node_out, node_sizes);

  // My slice of each source's bundle sits after the slices of my node-mates
  // with lower ids.
  std::vector<std::vector<double>> incoming(static_cast<std::size_t>(p));
  for (int src = 0; src < p; ++src) {
    const auto& bundle = bundles[static_cast<std::size_t>(src)];
    std::size_t offset = 0;
    for (const int dst : topo.members(topo.node_of(me))) {
      if (dst == me) break;
      offset += pair_doubles(src, dst);
    }
    const std::size_t len = pair_doubles(src, me);
    LC_CHECK(offset + len <= bundle.size(), "bundle framing mismatch");
    incoming[static_cast<std::size_t>(src)].assign(
        bundle.begin() + static_cast<std::ptrdiff_t>(offset),
        bundle.begin() + static_cast<std::ptrdiff_t>(offset + len));
  }
  return incoming;
}

}  // namespace lc::comm
