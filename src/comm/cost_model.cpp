#include "comm/cost_model.hpp"

#include "common/check.hpp"

namespace lc::comm {

double traditional_fft_comm_time(i64 n, int workers,
                                 double beta_link_points_per_sec) {
  LC_CHECK_ARG(n >= 1 && workers >= 1, "bad problem shape");
  LC_CHECK_ARG(beta_link_points_per_sec > 0.0, "bandwidth must be positive");
  const double n3 = static_cast<double>(n) * static_cast<double>(n) *
                    static_cast<double>(n);
  return 2.0 * n3 /
         (static_cast<double>(workers) * beta_link_points_per_sec);
}

double lowcomm_exchange_points(i64 n, i64 k, double r) {
  LC_CHECK_ARG(n >= k && k >= 1, "sub-domain larger than grid");
  LC_CHECK_ARG(r >= 1.0, "downsampling rate must be >= 1");
  const double n3 = static_cast<double>(n) * static_cast<double>(n) *
                    static_cast<double>(n);
  const double k3 = static_cast<double>(k) * static_cast<double>(k) *
                    static_cast<double>(k);
  return k3 + (n3 - k3) / (r * r * r);
}

double lowcomm_comm_time(i64 n, i64 k, double r, int workers,
                         double beta_link_points_per_sec) {
  LC_CHECK_ARG(workers >= 1, "need at least one worker");
  LC_CHECK_ARG(beta_link_points_per_sec > 0.0, "bandwidth must be positive");
  return lowcomm_exchange_points(n, k, r) /
         (static_cast<double>(workers) * beta_link_points_per_sec);
}

double comm_fraction(double comm_time, double compute_points,
                     double compute_rate) {
  LC_CHECK_ARG(comm_time >= 0.0 && compute_points >= 0.0, "negative cost");
  LC_CHECK_ARG(compute_rate > 0.0, "compute rate must be positive");
  const double compute_time = compute_points / compute_rate;
  const double total = comm_time + compute_time;
  return total == 0.0 ? 0.0 : comm_time / total;
}

}  // namespace lc::comm
