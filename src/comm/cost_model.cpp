#include "comm/cost_model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace lc::comm {

namespace {

std::size_t rounded(double bytes) {
  return static_cast<std::size_t>(std::llround(bytes));
}

}  // namespace

LevelTimes predict_exchange_times(const LevelTraffic& traffic,
                                  const HierarchicalLinkModel& links) {
  LevelTimes t;
  t.intra_seconds =
      static_cast<double>(traffic.intra_messages) * links.intra.alpha +
      static_cast<double>(traffic.intra_bytes) * links.intra.beta;
  t.inter_seconds =
      static_cast<double>(traffic.inter_messages) * links.inter.alpha +
      static_cast<double>(traffic.inter_bytes) * links.inter.beta;
  return t;
}

LevelTraffic flat_exchange_traffic(int ranks, int ranks_per_node,
                                   double bytes_per_rank) {
  LC_CHECK_ARG(ranks >= 1 && ranks_per_node >= 1 && ranks_per_node <= ranks,
               "bad cluster shape");
  LC_CHECK_ARG(bytes_per_rank >= 0.0, "negative volume");
  LevelTraffic t;
  if (ranks == 1) return t;
  const double p = static_cast<double>(ranks);
  const double g = static_cast<double>(ranks_per_node);
  const double m = bytes_per_rank / (p - 1.0);  // per destination rank
  t.intra_messages = rounded(p * (g - 1.0));
  t.intra_bytes = rounded(p * (g - 1.0) * m);
  t.inter_messages = rounded(p * (p - g));
  t.inter_bytes = rounded(p * (p - g) * m);
  return t;
}

LevelTraffic hierarchical_exchange_traffic(int ranks, int ranks_per_node,
                                           double bytes_per_rank,
                                           double node_dedup) {
  LC_CHECK_ARG(ranks >= 1 && ranks_per_node >= 1 && ranks_per_node <= ranks,
               "bad cluster shape");
  LC_CHECK_ARG(ranks % ranks_per_node == 0,
               "model assumes uniform nodes (ranks %% ranks_per_node == 0)");
  LC_CHECK_ARG(bytes_per_rank >= 0.0, "negative volume");
  LC_CHECK_ARG(node_dedup >= 1.0, "dedup factor must be >= 1");
  LevelTraffic t;
  if (ranks == 1) return t;
  const double p = static_cast<double>(ranks);
  const double g = static_cast<double>(ranks_per_node);
  const double nodes = p / g;
  // Split of each rank's Eqn-6 volume between its own node and the rest,
  // under the flat per-pair spread (the volume the routing re-arranges).
  const double own_bundle = bytes_per_rank * (g - 1.0) / (p - 1.0);
  const double remote = bytes_per_rank * (p - g) / (p - 1.0) / node_dedup;
  // Own-node multicast: every rank hands its own-node bundle to each of its
  // g−1 node peers directly.
  t.intra_messages = rounded(p * (g - 1.0));
  t.intra_bytes = rounded(p * (g - 1.0) * own_bundle);
  // Gather: every non-leader funnels its whole remote share to the leader
  // in one message.
  t.intra_messages += rounded(nodes * (g - 1.0));
  t.intra_bytes += rounded(nodes * (g - 1.0) * remote);
  // Inter: one combined message per ordered node pair, carrying the g
  // senders' (deduplicated) share for that destination node.
  t.inter_messages = rounded(nodes * (nodes - 1.0));
  t.inter_bytes = rounded(p * remote);
  // Redistribute: the destination leader forwards each received bundle to
  // its g−1 peers.
  t.intra_messages += rounded(nodes * (nodes - 1.0) * (g - 1.0));
  t.intra_bytes += rounded(nodes * (g - 1.0) * g * remote);
  return t;
}

double traditional_fft_comm_time(i64 n, int workers,
                                 double beta_link_points_per_sec) {
  LC_CHECK_ARG(n >= 1 && workers >= 1, "bad problem shape");
  LC_CHECK_ARG(beta_link_points_per_sec > 0.0, "bandwidth must be positive");
  const double n3 = static_cast<double>(n) * static_cast<double>(n) *
                    static_cast<double>(n);
  return 2.0 * n3 /
         (static_cast<double>(workers) * beta_link_points_per_sec);
}

double lowcomm_exchange_points(i64 n, i64 k, double r) {
  LC_CHECK_ARG(n >= k && k >= 1, "sub-domain larger than grid");
  LC_CHECK_ARG(r >= 1.0, "downsampling rate must be >= 1");
  const double n3 = static_cast<double>(n) * static_cast<double>(n) *
                    static_cast<double>(n);
  const double k3 = static_cast<double>(k) * static_cast<double>(k) *
                    static_cast<double>(k);
  return k3 + (n3 - k3) / (r * r * r);
}

double lowcomm_comm_time(i64 n, i64 k, double r, int workers,
                         double beta_link_points_per_sec) {
  LC_CHECK_ARG(workers >= 1, "need at least one worker");
  LC_CHECK_ARG(beta_link_points_per_sec > 0.0, "bandwidth must be positive");
  return lowcomm_exchange_points(n, k, r) /
         (static_cast<double>(workers) * beta_link_points_per_sec);
}

double comm_fraction(double comm_time, double compute_points,
                     double compute_rate) {
  LC_CHECK_ARG(comm_time >= 0.0 && compute_points >= 0.0, "negative cost");
  LC_CHECK_ARG(compute_rate > 0.0, "compute rate must be positive");
  const double compute_time = compute_points / compute_rate;
  const double total = comm_time + compute_time;
  return total == 0.0 ? 0.0 : comm_time / total;
}

}  // namespace lc::comm
