// Communication cost models from the paper (§2.1 and §5.1).
//
//   Eqn 2 (α-β model):       t(m)    = α + β · m
//   Eqn 1 (traditional FFT): T_FFT   = 2 · N³ / (P · β_link)
//   Eqn 6 (our method):      T_ours  = (k³ + (N³ − k³)/r³) / (P · β_link)
//
// β_link is expressed as points per second per link (the paper divides a
// point count by P·β_link, so β_link carries points/s units); the α-β model
// uses seconds and bytes.
#pragma once

#include <cstddef>

#include "tensor/grid.hpp"

namespace lc::comm {

/// Latency-bandwidth point-to-point model (paper Eqn 2).
struct AlphaBetaModel {
  double alpha = 1e-6;   ///< per-message latency [s]
  double beta = 1e-10;   ///< per-byte transfer cost [s/byte]

  /// Time to move one m-byte message.
  [[nodiscard]] double message_time(std::size_t bytes) const noexcept {
    return alpha + beta * static_cast<double>(bytes);
  }

  /// Time for `rounds` rounds each moving `bytes_per_round` per worker.
  [[nodiscard]] double rounds_time(int rounds,
                                   std::size_t bytes_per_round) const noexcept {
    return static_cast<double>(rounds) * message_time(bytes_per_round);
  }
};

/// Per-level α-β link parameters for a two-level (intra-node / inter-node)
/// hierarchy. The defaults model a shared-memory or NVLink-class intra-node
/// link roughly an order of magnitude faster (and lower-latency) than the
/// network link, matching the regime where hierarchical routing pays off.
/// A flat cluster uses `inter` for everything (Topology::flat marks every
/// link inter-node), so the single-level AlphaBetaModel behaviour is the
/// `intra == inter` special case.
struct HierarchicalLinkModel {
  AlphaBetaModel intra{1e-7, 1e-11};  ///< within a node (NUMA / NVLink)
  AlphaBetaModel inter{1e-6, 1e-10};  ///< across nodes (network)

  [[nodiscard]] const AlphaBetaModel& level(bool inter_node) const noexcept {
    return inter_node ? inter : intra;
  }
  /// Both levels priced like the single flat link `m` (legacy behaviour).
  [[nodiscard]] static HierarchicalLinkModel uniform(AlphaBetaModel m) {
    return HierarchicalLinkModel{m, m};
  }
};

/// Byte / message totals split by link level. Produced both statically
/// (core::lowcomm_exchange_traffic walks the octrees) and empirically
/// (CommStats counts executed sends); the two must agree exactly.
struct LevelTraffic {
  std::size_t intra_bytes = 0;
  std::size_t inter_bytes = 0;
  std::size_t intra_messages = 0;
  std::size_t inter_messages = 0;

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return intra_bytes + inter_bytes;
  }
  [[nodiscard]] std::size_t total_messages() const noexcept {
    return intra_messages + inter_messages;
  }
};

/// Per-level predicted times for a traffic pattern.
struct LevelTimes {
  double intra_seconds = 0.0;
  double inter_seconds = 0.0;

  [[nodiscard]] double total_seconds() const noexcept {
    return intra_seconds + inter_seconds;
  }
};

/// Price `traffic` with the per-level α-β model: each level costs
/// messages·α + bytes·β (aggregate serialized time, the same convention as
/// CommStats::modeled_nanos).
[[nodiscard]] LevelTimes predict_exchange_times(
    const LevelTraffic& traffic, const HierarchicalLinkModel& links);

/// Analytic traffic of the FLAT personalised exchange: each of `ranks`
/// workers ships `bytes_per_rank` split evenly over its p−1 peers, of which
/// ranks_per_node−1 share its node. This is what Rank::all_to_all executes.
[[nodiscard]] LevelTraffic flat_exchange_traffic(int ranks, int ranks_per_node,
                                                 double bytes_per_rank);

/// Analytic traffic of the composed hierarchical exchange (split → inter →
/// intra): non-leaders funnel their remote share through the node leader
/// (intra), leaders exchange one combined message per ordered node pair
/// (inter), and the destination leader redistributes each received bundle
/// to its node peers (intra). `node_dedup >= 1` is the factor by which
/// node-granularity packing shrinks the inter-node payload (a cell needed
/// by several ranks of one node crosses the network once instead of once
/// per rank); 1 means no overlap.
[[nodiscard]] LevelTraffic hierarchical_exchange_traffic(int ranks,
                                                         int ranks_per_node,
                                                         double bytes_per_rank,
                                                         double node_dedup);

/// Eqn 1: per-node communication time of the traditional distributed 3D
/// FFT, with two all-to-all stages each moving ~N³/P points.
[[nodiscard]] double traditional_fft_comm_time(i64 n, int workers,
                                               double beta_link_points_per_sec);

/// Number of points our method exchanges in its single accumulation round:
/// the dense k³ sub-domain plus the downsampled exterior (N³ − k³)/r³.
[[nodiscard]] double lowcomm_exchange_points(i64 n, i64 k, double r);

/// Eqn 6: per-node communication time of the low-communication method.
[[nodiscard]] double lowcomm_comm_time(i64 n, i64 k, double r, int workers,
                                       double beta_link_points_per_sec);

/// Communication fraction of a run that computes `compute_points` grid
/// points at `compute_rate` points/s and spends `comm_time` communicating.
/// Reproduces the §2.1 claim shape (49% CPU / 97% GPU comm share when the
/// compute rate is accelerated 43×).
[[nodiscard]] double comm_fraction(double comm_time, double compute_points,
                                   double compute_rate);

}  // namespace lc::comm
