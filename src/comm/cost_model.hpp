// Communication cost models from the paper (§2.1 and §5.1).
//
//   Eqn 2 (α-β model):       t(m)    = α + β · m
//   Eqn 1 (traditional FFT): T_FFT   = 2 · N³ / (P · β_link)
//   Eqn 6 (our method):      T_ours  = (k³ + (N³ − k³)/r³) / (P · β_link)
//
// β_link is expressed as points per second per link (the paper divides a
// point count by P·β_link, so β_link carries points/s units); the α-β model
// uses seconds and bytes.
#pragma once

#include <cstddef>

#include "tensor/grid.hpp"

namespace lc::comm {

/// Latency-bandwidth point-to-point model (paper Eqn 2).
struct AlphaBetaModel {
  double alpha = 1e-6;   ///< per-message latency [s]
  double beta = 1e-10;   ///< per-byte transfer cost [s/byte]

  /// Time to move one m-byte message.
  [[nodiscard]] double message_time(std::size_t bytes) const noexcept {
    return alpha + beta * static_cast<double>(bytes);
  }

  /// Time for `rounds` rounds each moving `bytes_per_round` per worker.
  [[nodiscard]] double rounds_time(int rounds,
                                   std::size_t bytes_per_round) const noexcept {
    return static_cast<double>(rounds) * message_time(bytes_per_round);
  }
};

/// Eqn 1: per-node communication time of the traditional distributed 3D
/// FFT, with two all-to-all stages each moving ~N³/P points.
[[nodiscard]] double traditional_fft_comm_time(i64 n, int workers,
                                               double beta_link_points_per_sec);

/// Number of points our method exchanges in its single accumulation round:
/// the dense k³ sub-domain plus the downsampled exterior (N³ − k³)/r³.
[[nodiscard]] double lowcomm_exchange_points(i64 n, i64 k, double r);

/// Eqn 6: per-node communication time of the low-communication method.
[[nodiscard]] double lowcomm_comm_time(i64 n, i64 k, double r, int workers,
                                       double beta_link_points_per_sec);

/// Communication fraction of a run that computes `compute_points` grid
/// points at `compute_rate` points/s and spends `comm_time` communicating.
/// Reproduces the §2.1 claim shape (49% CPU / 97% GPU comm share when the
/// compute rate is accelerated 43×).
[[nodiscard]] double comm_fraction(double comm_time, double compute_points,
                                   double compute_rate);

}  // namespace lc::comm
