// Composed topology-aware collectives (ROADMAP item 1), built entirely from
// Rank::send / Rank::recv point-to-point primitives in the ExaComm/HiCCL
// style: a collective is a fixed schedule of striped intra-node and
// inter-node phases (split → inter → intra) rather than a monolithic
// primitive. Phasing for the personalised exchange:
//
//   split (intra):  every non-leader funnels its remote-bound payload to
//                   its node leader in ONE message;
//   inter:          leaders exchange ONE combined message per ordered node
//                   pair — the expensive link is crossed exactly once per
//                   pair, however many ranks share each node;
//   intra:          the destination leader redistributes each received
//                   bundle to its node peers; own-node payloads travel
//                   directly between node-mates.
//
// Framing carries no metadata: SPMD callers are deterministic, so both
// sides compute every bundle size from a shared size oracle (the same
// "octrees are reproducible from (grid, params)" idiom the flat exchange
// uses). All blocking waits sit in Rank::recv / barrier, so a peer failure
// unwinds these collectives with RankAborted exactly like the built-ins.
#pragma once

#include <functional>
#include <vector>

#include "comm/sim_cluster.hpp"
#include "comm/topology.hpp"

namespace lc::comm {

/// Doubles rank `src` addresses to node `dst_node`. Must be a pure function
/// of (src, dst_node) agreed by every rank.
using NodeBundleSizes = std::function<std::size_t(int src, int dst_node)>;

/// Doubles rank `src` addresses to rank `dst`. Must be a pure function of
/// (src, dst) agreed by every rank.
using PairSizes = std::function<std::size_t(int src, int dst)>;

/// Node-multicast personalised exchange: `outgoing[d]` is this rank's
/// bundle for node d, and EVERY rank of node d receives it (the caller
/// packs a bundle once per destination node — the dedup that makes
/// inter-node bytes drop below the flat per-rank exchange — and each
/// receiver picks out the part it needs). Returns the received bundles
/// indexed by SOURCE RANK: incoming[s] is rank s's bundle for this rank's
/// node (incoming[id()] is the self bundle). Counts one collective round.
[[nodiscard]] std::vector<std::vector<double>> node_multicast_exchange(
    Rank& rank, const std::vector<std::vector<double>>& outgoing,
    const NodeBundleSizes& bundle_doubles);

/// Per-rank personalised all-to-all routed along the topology: a drop-in
/// for Rank::all_to_all (same inputs, same outputs) that ships each node
/// pair's traffic in one inter-node message instead of one per rank pair.
/// Payload bytes on the inter link match the flat exchange (no dedup at
/// per-rank granularity) but the message count falls from
/// ranks²-ish to nodes², which is where the α term of Eqn 2 goes to die.
[[nodiscard]] std::vector<std::vector<double>> hierarchical_all_to_all(
    Rank& rank, const std::vector<std::vector<double>>& outgoing,
    const PairSizes& pair_doubles);

}  // namespace lc::comm
