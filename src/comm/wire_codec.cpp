#include "comm/wire_codec.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/runtime_flags.hpp"
#include "common/simd.hpp"

namespace lc::comm {

const char* codec_name(WireCodec codec) noexcept {
  switch (codec) {
    case WireCodec::kOff:
      return "off";
    case WireCodec::kFp32:
      return "fp32";
    case WireCodec::kFp16:
      return "fp16";
    case WireCodec::kBf16:
      return "bf16";
    case WireCodec::kQ16:
      return "q16";
  }
  return "off";
}

WireCodec parse_wire_codec(std::string_view value) {
  for (const WireCodec c : kAllWireCodecs) {
    if (value == codec_name(c)) return c;
  }
  throw InvalidArgument("wire codec '" + std::string(value) +
                        "' is not a recognised value (expected one of: off "
                        "fp32 fp16 bf16 q16)");
}

WireCodec wire_codec_from_env() {
  return kAllWireCodecs[env_choice("LC_WIRE", 0,
                                   {"off", "fp32", "fp16", "bf16", "q16"})];
}

// ---------------------------------------------------------------------------

WireEncoder::WireEncoder(WireCodec codec, std::vector<double>& out)
    : codec_(codec), out_(out) {
  LC_CHECK_ARG(out_.empty(), "WireEncoder output buffer must start empty");
}

void WireEncoder::append(const void* src, std::size_t bytes) {
  const std::size_t need = wire_doubles(bytes_ + bytes);
  if (out_.size() < need) {
    if (out_.capacity() < need) {
      out_.reserve(std::max(need, out_.capacity() * 2));
    }
    out_.resize(need, 0.0);  // zero-fill → deterministic tail padding
  }
  std::memcpy(reinterpret_cast<unsigned char*>(out_.data()) + bytes_, src,
              bytes);
  bytes_ += bytes;
}

void WireEncoder::add_cell(std::span<const double> samples) {
  const std::size_t n = samples.size();
  raw_bytes_ += n * sizeof(double);
  switch (codec_) {
    case WireCodec::kOff:
      append(samples.data(), n * sizeof(double));
      return;
    case WireCodec::kFp32: {
      scratch32_.resize(n);
      simd::row_f64_to_f32(scratch32_.data(), samples.data(), n);
      scratchd_.resize(n);
      simd::row_f32_to_f64(scratchd_.data(), scratch32_.data(), n);
      append(scratch32_.data(), n * sizeof(float));
      break;
    }
    case WireCodec::kFp16: {
      scratch16_.resize(n);
      simd::row_f64_to_f16(scratch16_.data(), samples.data(), n);
      scratchd_.resize(n);
      simd::row_f16_to_f64(scratchd_.data(), scratch16_.data(), n);
      append(scratch16_.data(), n * sizeof(std::uint16_t));
      break;
    }
    case WireCodec::kBf16: {
      scratch16_.resize(n);
      simd::row_f64_to_bf16(scratch16_.data(), samples.data(), n);
      scratchd_.resize(n);
      simd::row_bf16_to_f64(scratchd_.data(), scratch16_.data(), n);
      append(scratch16_.data(), n * sizeof(std::uint16_t));
      break;
    }
    case WireCodec::kQ16: {
      // Per-cell block scaling: one fp64 max-abs-derived scale, then int16
      // quantisation. Zero cells encode (scale 0, all-zero payload) and
      // decode exactly; otherwise |error| ≤ scale / 2 = max_abs / 65534.
      const double max_abs = simd::row_max_abs(samples.data(), n);
      const double scale = max_abs / 32767.0;
      append(&scale, sizeof(double));
      scratchq_.resize(n);
      scratchd_.resize(n);
      if (max_abs == 0.0) {
        std::memset(scratchq_.data(), 0, n * sizeof(std::int16_t));
        std::memset(scratchd_.data(), 0, n * sizeof(double));
      } else {
        const double inv = 32767.0 / max_abs;
        for (std::size_t i = 0; i < n; ++i) {
          long q = std::lrint(samples[i] * inv);
          q = q > 32767 ? 32767 : (q < -32767 ? -32767 : q);
          scratchq_[i] = static_cast<std::int16_t>(q);
          scratchd_[i] = static_cast<double>(q) * scale;
        }
      }
      append(scratchq_.data(), n * sizeof(std::int16_t));
      break;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double err = std::fabs(scratchd_[i] - samples[i]);
    if (err > max_error_) max_error_ = err;
  }
}

std::size_t WireEncoder::finish() {
  const std::size_t need = wire_doubles(bytes_);
  if (out_.size() != need) out_.resize(need, 0.0);
  return bytes_;
}

// ---------------------------------------------------------------------------

WireDecoder::WireDecoder(WireCodec codec, std::span<const double> wire)
    : codec_(codec),
      base_(reinterpret_cast<const unsigned char*>(wire.data())),
      size_bytes_(wire.size() * sizeof(double)) {}

void WireDecoder::read_cell(std::span<double> out) {
  const std::size_t n = out.size();
  const std::size_t need = encoded_cell_bytes(codec_, n);
  LC_CHECK(bytes_ + need <= size_bytes_, "wire payload framing mismatch");
  const unsigned char* p = base_ + bytes_;
  switch (codec_) {
    case WireCodec::kOff:
      std::memcpy(out.data(), p, n * sizeof(double));
      break;
    case WireCodec::kFp32:
      scratch32_.resize(n);
      std::memcpy(scratch32_.data(), p, n * sizeof(float));
      simd::row_f32_to_f64(out.data(), scratch32_.data(), n);
      break;
    case WireCodec::kFp16:
      scratch16_.resize(n);
      std::memcpy(scratch16_.data(), p, n * sizeof(std::uint16_t));
      simd::row_f16_to_f64(out.data(), scratch16_.data(), n);
      break;
    case WireCodec::kBf16:
      scratch16_.resize(n);
      std::memcpy(scratch16_.data(), p, n * sizeof(std::uint16_t));
      simd::row_bf16_to_f64(out.data(), scratch16_.data(), n);
      break;
    case WireCodec::kQ16: {
      double scale;
      std::memcpy(&scale, p, sizeof(double));
      scratchq_.resize(n);
      std::memcpy(scratchq_.data(), p + sizeof(double),
                  n * sizeof(std::int16_t));
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = static_cast<double>(scratchq_[i]) * scale;
      }
      break;
    }
  }
  bytes_ += need;
}

void WireDecoder::finish() const {
  // Every byte consumed except the zero padding short of one wire double.
  LC_CHECK(wire_doubles(bytes_) * sizeof(double) == size_bytes_,
           "wire payload not fully consumed: framing mismatch");
}

}  // namespace lc::comm
