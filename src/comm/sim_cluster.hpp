// In-process simulated cluster: P ranks as threads, message-passing
// channels, MPI-style collectives, and exact byte/round accounting.
//
// This substitutes for the MPI cluster of the paper's evaluation platform.
// Data exchanges are real (buffers move between ranks through channels);
// what the cost model prices analytically, CommStats measures empirically,
// so the "traditional all-to-all vs single sparse exchange" comparison is
// grounded in executed transfers, not just formulas.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/topology.hpp"
#include "common/check.hpp"

namespace lc::comm {

/// Thrown on ranks blocked in a barrier, collective, or recv() when a peer
/// rank exits its body with an exception: the blocked rank cannot make
/// progress (its peer will never arrive), so it unwinds with this instead
/// of deadlocking. SimCluster::run catches these on the way out and
/// rethrows the peer's ORIGINAL exception to the caller.
class RankAborted : public Error {
 public:
  RankAborted() : Error("collective aborted: a peer rank failed") {}
};

/// Aggregate communication counters for one cluster run. Counters are
/// atomic because every rank thread updates them concurrently (Rank::send
/// runs on all ranks at once). In addition to exact byte/message/round
/// counts, every message is priced through an α-β model (Eqn 2), giving a
/// modelled wall-clock communication time — what the exchange would cost
/// on a real interconnect.
struct CommStats {
  std::atomic<std::size_t> bytes_sent{0};
  std::atomic<std::size_t> messages{0};
  // Receive-side mirrors of the counters above. Every delivered message is
  // counted on both sides, so `bytes_received == bytes_sent` and
  // `messages_received == messages` once a run has drained its channels —
  // an invariant the tests assert (historically only RankCommStats had the
  // receive side, so the cluster totals could not be cross-checked).
  std::atomic<std::size_t> bytes_received{0};
  std::atomic<std::size_t> messages_received{0};
  std::atomic<std::size_t> collective_rounds{0};
  // All-gather collectives counted separately: since the ring rewrite they
  // execute (and are priced as) their own algorithm, not a personalised
  // all-to-all.
  std::atomic<std::size_t> allgather_rounds{0};
  // Per-level split of bytes_sent / messages by the cluster topology:
  // intra + inter == total always. On a flat topology (every rank its own
  // node) all traffic is inter-node.
  std::atomic<std::size_t> intra_bytes_sent{0};
  std::atomic<std::size_t> inter_bytes_sent{0};
  std::atomic<std::size_t> intra_messages{0};
  std::atomic<std::size_t> inter_messages{0};
  std::atomic<std::int64_t> modeled_nanos{0};
  // Per-level split of modeled_nanos (intra + inter == total): the
  // telemetry layer pairs these against the planner's per-level wire
  // prediction, so drift is attributable to the link level that caused it.
  std::atomic<std::int64_t> intra_modeled_nanos{0};
  std::atomic<std::int64_t> inter_modeled_nanos{0};

  [[nodiscard]] double modeled_seconds() const {
    return static_cast<double>(modeled_nanos.load()) * 1e-9;
  }
  [[nodiscard]] double intra_modeled_seconds() const {
    return static_cast<double>(intra_modeled_nanos.load()) * 1e-9;
  }
  [[nodiscard]] double inter_modeled_seconds() const {
    return static_cast<double>(inter_modeled_nanos.load()) * 1e-9;
  }

  /// Per-level byte/message totals as a cost-model traffic record.
  [[nodiscard]] LevelTraffic level_traffic() const {
    LevelTraffic t;
    t.intra_bytes = intra_bytes_sent.load();
    t.inter_bytes = inter_bytes_sent.load();
    t.intra_messages = intra_messages.load();
    t.inter_messages = inter_messages.load();
    return t;
  }

  void reset() {
    bytes_sent = 0;
    messages = 0;
    bytes_received = 0;
    messages_received = 0;
    collective_rounds = 0;
    allgather_rounds = 0;
    intra_bytes_sent = 0;
    inter_bytes_sent = 0;
    intra_messages = 0;
    inter_messages = 0;
    modeled_nanos = 0;
    intra_modeled_nanos = 0;
    inter_modeled_nanos = 0;
  }
};

/// Per-rank communication snapshot (SimCluster::rank_stats): who moved the
/// bytes and who sat in barriers. Imbalance here is the load-balance signal
/// the aggregate CommStats cannot show.
struct RankCommStats {
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;
  std::size_t messages_sent = 0;
  std::size_t messages_received = 0;
  /// Per-level split of bytes_sent (intra + inter == bytes_sent).
  std::size_t intra_bytes_sent = 0;
  std::size_t inter_bytes_sent = 0;
  double barrier_wait_seconds = 0.0;
  /// Time blocked in recv() waiting for a message to arrive.
  double recv_wait_seconds = 0.0;
  /// Exact integer-nanosecond originals of the wait totals above. Every
  /// "comm.barrier" / "comm.recv_wait" trace span records the SAME integer
  /// the counter accrued, so tools/critical_path.py can assert its
  /// per-rank attribution sums match these exactly (no float rounding).
  std::int64_t barrier_wait_ns = 0;
  std::int64_t recv_wait_ns = 0;
};

class SimCluster;

/// Per-rank handle passed to the rank body; provides point-to-point and
/// collective operations. Valid only inside SimCluster::run.
class Rank {
 public:
  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] int size() const noexcept;
  /// Node grouping of the cluster this rank belongs to.
  [[nodiscard]] const Topology& topology() const noexcept;

  /// Send a copy of `data` to rank `dst` (non-blocking, buffered).
  void send(int dst, std::span<const double> data);

  /// Receive the next message from rank `src` (blocking, FIFO per channel).
  [[nodiscard]] std::vector<double> recv(int src);

  /// Personalised all-to-all: element [d] of `outgoing` goes to rank d;
  /// returns the vector of buffers received, indexed by source rank.
  /// Counts one collective round.
  [[nodiscard]] std::vector<std::vector<double>> all_to_all(
      const std::vector<std::vector<double>>& outgoing);

  /// All-gather: everyone receives every rank's buffer, indexed by source.
  /// Executed as a forwarding ring over rank ids (each rank talks only to
  /// its neighbours, so on a grouped topology only the node-boundary links
  /// carry inter-node traffic), with its own round accounting
  /// (CommStats::allgather_rounds) rather than the personalised
  /// all-to-all's. Counts one collective round.
  [[nodiscard]] std::vector<std::vector<double>> all_gather(
      std::span<const double> mine);

  /// Sum-reduction visible on all ranks. Deterministic: every rank sums the
  /// per-rank contributions in rank order, so the floating-point result is
  /// bit-identical run to run regardless of thread arrival order. Counts
  /// one collective round.
  [[nodiscard]] double all_reduce_sum(double value);

  /// Synchronisation barrier.
  void barrier();

  /// Count one collective round in the cluster stats. For collectives
  /// composed from send/recv outside this class (comm/hierarchical.hpp);
  /// call from exactly one rank per round.
  void collective_round();

 private:
  friend class SimCluster;
  Rank(SimCluster& cluster, int id) : cluster_(&cluster), id_(id) {}

  SimCluster* cluster_;
  int id_;
};

/// Fixed-size simulated cluster. Construct once, `run` any number of SPMD
/// bodies; stats accumulate until reset.
class SimCluster {
 public:
  /// Flat cluster (every rank its own node): `link` prices each message for
  /// the modelled-time counter (Eqn 2) at both levels.
  explicit SimCluster(int ranks, AlphaBetaModel link = {});

  /// Hierarchical cluster: ranks grouped into nodes by `topo`, messages
  /// classified (and priced) per link level by whether source and
  /// destination share a node.
  SimCluster(Topology topo, HierarchicalLinkModel links = {});

  [[nodiscard]] int size() const noexcept { return ranks_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const CommStats& stats() const noexcept { return stats_; }
  /// Per-rank counters accumulated since construction or reset_stats().
  [[nodiscard]] RankCommStats rank_stats(int rank) const;
  /// The inter-node (flat-cluster) link model — legacy accessor.
  [[nodiscard]] const AlphaBetaModel& link() const noexcept {
    return links_.inter;
  }
  [[nodiscard]] const HierarchicalLinkModel& links() const noexcept {
    return links_;
  }
  void reset_stats();

  /// Execute `body(rank)` on every rank concurrently; rethrows the first
  /// exception any rank raised after all ranks finish or abort. When a rank
  /// throws, peers blocked (now or later) in barriers, collectives, or
  /// recv() are unwound with RankAborted rather than deadlocking, and the
  /// cluster is reset to a clean, reusable state before rethrowing.
  void run(const std::function<void(Rank&)>& body);

 private:
  friend class Rank;

  // A queued message plus its out-of-band trace context: the 8-byte flow id
  // the sender minted (0 = untraced). Carried like an MPI envelope tag —
  // NOT part of the payload, so byte accounting (and the static traffic
  // mirror's byte-exactness) is unchanged by tracing.
  struct Message {
    std::vector<double> data;
    std::uint64_t trace_ctx = 0;
  };

  struct Channel {
    std::mutex mutex;
    std::condition_variable available;
    std::deque<Message> queue;
  };

  // Atomic backing store for RankCommStats, one slot per rank.
  struct RankCounters {
    std::atomic<std::size_t> bytes_sent{0};
    std::atomic<std::size_t> bytes_received{0};
    std::atomic<std::size_t> messages_sent{0};
    std::atomic<std::size_t> messages_received{0};
    std::atomic<std::size_t> intra_bytes_sent{0};
    std::atomic<std::size_t> inter_bytes_sent{0};
    std::atomic<std::int64_t> barrier_wait_ns{0};
    std::atomic<std::int64_t> recv_wait_ns{0};
  };

  Channel& channel(int src, int dst) {
    return channels_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(ranks_) +
                     static_cast<std::size_t>(dst)];
  }
  void barrier_wait(int rank);
  void abort_run();
  void throw_if_aborted() const {
    if (aborted_.load()) throw RankAborted();
  }

  int ranks_;
  Topology topo_;
  HierarchicalLinkModel links_;
  std::vector<Channel> channels_;
  CommStats stats_;
  std::vector<RankCounters> per_rank_;

  // Central barrier (generation-counted). `aborted_` is raised when a rank
  // body throws: every blocking wait (barrier, recv) re-checks it so peers
  // unwind via RankAborted for ANY number of pending synchronisation
  // points, not just the one in flight when the failure happened.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::atomic<bool> aborted_{false};

  // Reduction scratch: one slot per rank. Each rank writes only its own
  // slot before the pre-read barrier and every rank sums the slots in rank
  // order between the two barriers, so the result is deterministic
  // (bit-identical across runs) and the barriers provide the
  // happens-before edges — no mutex, no arrival-order dependence.
  std::vector<double> reduce_slots_;
};

}  // namespace lc::comm
