// Cluster topology: ranks grouped into "nodes" (ROADMAP item 1).
//
// Real clusters are hierarchical — cores share a NUMA domain, NUMA domains
// share a node, nodes share a rack — and the links differ by orders of
// magnitude at each level. The flat SimCluster prices every message with
// one α-β pair; Topology records which ranks share a node so point-to-point
// traffic can be classified (and priced) per level, and so composed
// collectives (comm/hierarchical.hpp) can route payloads along the
// hierarchy: intra-node links are cheap, so data destined for a remote node
// is funnelled through one "leader" rank per node and crosses the expensive
// inter-node link exactly once per node pair.
#pragma once

#include <span>
#include <vector>

#include "common/check.hpp"

namespace lc::comm {

/// Two-level rank grouping: every rank belongs to exactly one node; the
/// lowest rank of each node is its leader. A "flat" topology (one rank per
/// node) makes every link inter-node, which reproduces the pre-topology
/// SimCluster behaviour exactly.
class Topology {
 public:
  /// Every rank is its own node: all traffic is inter-node.
  [[nodiscard]] static Topology flat(int ranks);

  /// Contiguous blocks of `ranks_per_node` ranks per node ([0..g-1] on node
  /// 0, [g..2g-1] on node 1, ...). `ranks` need not divide evenly; the last
  /// node holds the remainder.
  [[nodiscard]] static Topology grouped(int ranks, int ranks_per_node);

  [[nodiscard]] int ranks() const noexcept {
    return static_cast<int>(node_of_.size());
  }
  [[nodiscard]] int nodes() const noexcept {
    return static_cast<int>(members_.size());
  }
  [[nodiscard]] bool is_flat() const noexcept { return nodes() == ranks(); }

  [[nodiscard]] int node_of(int rank) const {
    LC_CHECK_ARG(rank >= 0 && rank < ranks(), "bad rank");
    return node_of_[static_cast<std::size_t>(rank)];
  }
  /// Lowest rank of `node` — the rank that talks to other nodes on behalf
  /// of its peers in the composed collectives.
  [[nodiscard]] int leader_of(int node) const {
    return members(node).front();
  }
  [[nodiscard]] bool is_leader(int rank) const {
    return leader_of(node_of(rank)) == rank;
  }
  [[nodiscard]] bool same_node(int a, int b) const {
    return node_of(a) == node_of(b);
  }
  /// Ranks of `node`, ascending.
  [[nodiscard]] std::span<const int> members(int node) const {
    LC_CHECK_ARG(node >= 0 && node < nodes(), "bad node");
    return members_[static_cast<std::size_t>(node)];
  }

  friend bool operator==(const Topology& a, const Topology& b) {
    return a.node_of_ == b.node_of_;
  }

 private:
  Topology() = default;

  std::vector<int> node_of_;
  std::vector<std::vector<int>> members_;
};

}  // namespace lc::comm
